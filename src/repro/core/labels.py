"""Hop-label containers and intersection kernels.

§1 of the paper makes a practical observation that matters as much as the
algorithms: earlier hop-labeling implementations stored ``Lout/Lin`` as
hash sets and paid for it at query time; storing them as **sorted
vectors** and intersecting by merge eliminates the gap to interval-based
indices.  We follow that advice for the canonical representation: labels
are sorted Python lists of ints, and the empty-intersection test below is
the single hottest function in the library.

Three kernels are provided:

* :func:`sorted_intersect` — classic linear merge; best when the lists
  have similar lengths.
* :func:`gallop_intersect` — galloping/exponential search of the longer
  list; best when lengths are very skewed.
* :func:`intersects` — adaptive dispatcher used by the oracles.

A :class:`LabelSet` bundles the per-vertex ``Lout``/``Lin`` lists with
size accounting and (de)serialisation, shared by HL, DL, TF-label and
2HOP.  :meth:`LabelSet.seal` compiles the canonical lists into faster
query-side structures (an arena layout, hybrid set mirrors, and optional
bigint masks); see the method docstring for the exact strategy.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from itertools import accumulate
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "sorted_intersect",
    "gallop_intersect",
    "intersects",
    "first_common_hop",
    "LabelSet",
]


def sorted_intersect(a: Sequence[int], b: Sequence[int]) -> bool:
    """Whether two strictly-increasing int sequences share an element."""
    i, j = 0, 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            return True
        if x < y:
            i += 1
        else:
            j += 1
    return False


def gallop_intersect(small: Sequence[int], big: Sequence[int]) -> bool:
    """Merge with binary search into the larger list.

    For each element of ``small``, binary-search ``big`` from a moving
    lower bound.  O(|small| · log |big|), which wins when
    ``|big| >> |small|``.
    """
    lo = 0
    hi = len(big)
    for x in small:
        lo = bisect_left(big, x, lo, hi)
        if lo == hi:
            return False
        if big[lo] == x:
            return True
    return False


# When the longer list is at least this many times the shorter, galloping
# beats the linear merge.  Tuned by ``benchmarks/bench_kernels.py`` on
# CPython 3.11: bisect_left runs in C while the merge loop is interpreted,
# so the measured crossover sits at a 2x skew, far below the 16x a
# C-centric intuition would guess (see BENCH_kernels.json).
_GALLOP_RATIO = 2


def intersects(a: Sequence[int], b: Sequence[int]) -> bool:
    """Adaptive non-empty-intersection test for sorted int sequences."""
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return False
    # Cheap range rejection: disjoint value ranges cannot intersect.
    if a[-1] < b[0] or b[-1] < a[0]:
        return False
    if la * _GALLOP_RATIO < lb:
        return gallop_intersect(a, b)
    if lb * _GALLOP_RATIO < la:
        return gallop_intersect(b, a)
    return sorted_intersect(a, b)


def first_common_hop(a: Sequence[int], b: Sequence[int]) -> Optional[int]:
    """Smallest common element of two sorted sequences, or ``None``.

    Used by explanation utilities ("which hop certifies u -> v?") and by
    the Pruned-Landmark distance query.
    """
    i, j = 0, 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            return x
        if x < y:
            i += 1
        else:
            j += 1
    return None


#: Labels with at most this many hops skip the frozenset mirror at seal
#: time and are merge-scanned straight out of the arena.  Re-measured
#: for PR 2 (the ``seal_threshold`` sweep in
#: ``benchmarks/bench_kernels.py``, BENCH_kernels.json) after the
#: vectorized engine took over large batches: the hybrid path now only
#: serves single queries and sub-``MIN_BATCH`` workloads, and the sweep
#: still bottoms out at thresholds 0-1.  1 remains the deliberate
#: trade — empty and singleton labels answer in one C-level ``in``
#: probe anyway, so their mirrors buy almost nothing for the ~120 bytes
#: and seal-time hash pass each costs.
_SEAL_SET_MIN = 1

#: Largest vertex/hop-id space for which :meth:`LabelSet.seal` will build
#: bigint label masks when asked (one n-bit int per vertex per side, so
#: worst-case ~n²/8 bytes per side; 2**15 caps that at ~128 MiB and in
#: practice masks only span each label's largest hop id).  PR 2
#: narrowed the masks' role: batches of
#: ``repro.kernels.batchquery.BatchQueryEngine.MIN_BATCH`` pairs or
#: more route to the chunked-bitset engine instead (the
#: ``engine_vs_masks`` sweep measures the bigint AND loop losing from
#: n≈4096 because its per-pair cost grows with the ~n/64 mask words),
#: so this limit is tuned for the single-query path alone — where one
#: C-level AND still beats every alternative — and stays at 2**15.
_MASK_LIMIT = 1 << 15


class LabelSet:
    """Per-vertex ``Lout``/``Lin`` hop labels for ``n`` vertices.

    Hops are stored in whatever id space the owning algorithm chooses
    (DL stores rank indices, HL stores vertex ids); the owner is
    responsible for translating queries.  Lists must be kept sorted; the
    :meth:`check_sorted` helper is used by tests.

    Representation layers
    ---------------------
    * **Canonical**: ``lout`` / ``lin`` sorted lists.  Construction
      appends to them, serialisation stores them, witnesses scan them.
    * **Arena** (:meth:`arena`, cached lazily after :meth:`seal`): each
      side flattened into one ``array('l')`` of hops plus an ``n+1``
      offsets array — the compact layout small labels are merge-scanned
      from.
    * **Hybrid set mirrors** (built by :meth:`seal`): ``lout_sets[u]`` is
      a frozenset for labels longer than ``_SEAL_SET_MIN`` and ``None``
      for tiny ones, which stay on the merge-scan path.
    * **Bigint masks** (optional): one int per vertex per side with bit
      ``h`` set iff hop ``h`` is in the label, making a query a single
      C-level ``&``.  Construction can attach masks it already maintains
      (:meth:`attach_masks` — DL gets them for free), or :meth:`seal`
      can build them on request.  Masks freeze the ``lin`` lists: a
      caller that mutates ``lin`` afterwards must keep them in sync via
      :meth:`or_in_mask` (the dynamic oracle does) or drop them with
      :meth:`drop_masks`.
    """

    __slots__ = (
        "n",
        "_lout",
        "_lin",
        "lout_sets",
        "_out_hops",
        "_out_offs",
        "_in_hops",
        "_in_offs",
        "_out_masks",
        "_in_masks",
        "_generation",
        "_arena_backed",
    )

    def __init__(self, n: int) -> None:
        self.n = n
        self._lout: Optional[List[List[int]]] = [[] for _ in range(n)]
        self._lin: Optional[List[List[int]]] = [[] for _ in range(n)]
        #: Hybrid frozenset mirror of ``lout`` built by :meth:`seal`
        #: (``None`` entries mark tiny labels on the merge-scan path).
        self.lout_sets = None
        self._out_hops = None
        self._out_offs = None
        self._in_hops = None
        self._in_offs = None
        self._out_masks = None
        self._in_masks = None
        self._generation = 0
        self._arena_backed = False

    # ------------------------------------------------------------------
    # Arena-backed construction (the serve path)
    # ------------------------------------------------------------------
    @classmethod
    def from_arena(cls, n: int, out_hops, out_offs, in_hops, in_offs) -> "LabelSet":
        """A :class:`LabelSet` served directly off flat arena arrays.

        This is how deserialised artifacts come back: the four arrays
        (typically zero-copy views over one read-only ``mmap``) *are*
        the labels — no per-vertex Python lists are materialised on
        load.  Queries run straight off the arena (scalar merge-scans;
        the vectorized batch engine snapshots the same arrays), and the
        canonical ``lout``/``lin`` lists are rebuilt lazily only if a
        caller actually touches them (witnesses, re-serialisation to
        JSON, mutation).  Mutating a lazily-materialised copy requires
        a :meth:`seal` before querying again, exactly as for built
        label sets.
        """
        if len(out_offs) != n + 1 or len(in_offs) != n + 1:
            raise ValueError("offsets arrays do not match vertex count")
        ls = cls.__new__(cls)
        ls.n = n
        ls._lout = None
        ls._lin = None
        ls.lout_sets = None
        ls._out_hops = out_hops
        ls._out_offs = out_offs
        ls._in_hops = in_hops
        ls._in_offs = in_offs
        ls._out_masks = None
        ls._in_masks = None
        ls._generation = 0
        ls._arena_backed = True
        return ls

    def _materialize(self) -> None:
        """Rebuild the canonical lists from the arena (both sides)."""
        oh, oo, ih, io_ = self._out_hops, self._out_offs, self._in_hops, self._in_offs
        self._lout = [
            [int(h) for h in oh[oo[u] : oo[u + 1]]] for u in range(self.n)
        ]
        self._lin = [
            [int(h) for h in ih[io_[u] : io_[u + 1]]] for u in range(self.n)
        ]
        # The lists are now canonical; queries switch to the list paths
        # (an unmaterialised arena can never go stale, lists can).
        self._arena_backed = False

    @property
    def lout(self) -> List[List[int]]:
        if self._lout is None:
            self._materialize()
        return self._lout

    @lout.setter
    def lout(self, value: List[List[int]]) -> None:
        self._lout = value
        self._arena_backed = False

    @property
    def lin(self) -> List[List[int]]:
        if self._lin is None:
            self._materialize()
        return self._lin

    @lin.setter
    def lin(self, value: List[List[int]]) -> None:
        self._lin = value
        self._arena_backed = False

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------
    def seal(self, set_min: Optional[int] = None, build_masks: bool = False) -> "LabelSet":
        """Compile the canonical lists into fast query structures.

        The paper's advice — sorted vectors over hash sets — is about
        C++ cache behaviour; in CPython the constant factors invert
        because ``frozenset.isdisjoint`` and bigint ``&`` run in C while
        a merge loop runs in the interpreter (the ablation-labelstore
        experiment and ``bench_kernels.py`` both measure it).  ``seal``
        therefore builds, in order of preference at query time:

        1. **masks** — if already attached by construction, or if
           ``build_masks=True`` and every hop id fits under
           ``_MASK_LIMIT``.  One bigint ``&`` per query.
        2. **hybrid mirrors + arena** — frozensets for labels longer
           than ``set_min`` (default ``_SEAL_SET_MIN``), an arena
           merge-scan for the tiny rest.

        Call again after mutating ``lout``: a re-seal **drops** any
        attached masks (they would be stale snapshots of the old
        labels) and rebuilds the hybrid mirrors from the current lists;
        constructions that maintain masks re-attach them afterwards.
        ``lin`` lists stay live on the hybrid path (the dynamic oracle
        relies on that); they are snapshot by masks, which the mutator
        must then maintain via :meth:`or_in_mask`.
        """
        if set_min is None:
            set_min = _SEAL_SET_MIN
        if self._lout is None:
            # Arena-backed (deserialised) labels: sealing works on the
            # canonical lists, so rebuild them before the arena that
            # produced them is invalidated below.
            self._materialize()
        # Invalidate any previous arena; it is rebuilt lazily on first
        # use (flattening costs ~0.1 µs per stored int, which the mask
        # fast path never needs to pay).  Attached masks are dropped for
        # the same staleness reason.
        self._out_hops = self._out_offs = None
        self._in_hops = self._in_offs = None
        self._out_masks = self._in_masks = None
        self._generation += 1
        if build_masks and self._fits_masks():
            self._build_masks()
        if self._out_masks is not None:
            # Masks answer every query; frozenset mirrors would be dead
            # weight, so the hybrid layer stays empty (but sealed).
            self.lout_sets = [None] * self.n
        else:
            # Hybrid set mirror of the out side.
            self.lout_sets = [
                frozenset(lab) if len(lab) > set_min else None for lab in self.lout
            ]
        return self

    def _out_arena(self):
        """``(out_hops, out_offs)``, built lazily — queries only ever
        scan the out side, so the in side is not flattened here."""
        if self._out_hops is None:
            out_hops = array("l")
            ext = out_hops.extend
            for lab in self.lout:
                ext(lab)
            self._out_hops = out_hops
            self._out_offs = array("l", accumulate(map(len, self.lout), initial=0))
        return self._out_hops, self._out_offs

    def arena(self):
        """The flat label arena: ``(out_hops, out_offs, in_hops, in_offs)``.

        Each side is one ``array('l')`` of concatenated hops plus an
        ``n+1`` offsets array (``hops[offs[u]:offs[u+1]]`` is ``u``'s
        label).  Built per side on first request and cached until the
        next :meth:`seal`; offsets come from a C-level prefix sum.
        """
        self._out_arena()
        if self._in_hops is None:
            in_hops = array("l")
            ext = in_hops.extend
            for lab in self.lin:
                ext(lab)
            self._in_hops = in_hops
            self._in_offs = array("l", accumulate(map(len, self.lin), initial=0))
        return self._out_hops, self._out_offs, self._in_hops, self._in_offs

    def _fits_masks(self) -> bool:
        if self.n > _MASK_LIMIT:
            return False
        # Labels are sorted, so each list's last element is its maximum.
        top = max((lab[-1] for lab in self.lout if lab), default=0)
        top = max(top, max((lab[-1] for lab in self.lin if lab), default=0))
        return top < _MASK_LIMIT

    def _build_masks(self) -> None:
        out_masks = [0] * self.n
        in_masks = [0] * self.n
        for u, lab in enumerate(self.lout):
            b = 0
            for h in lab:
                b |= 1 << h
            out_masks[u] = b
        for u, lab in enumerate(self.lin):
            b = 0
            for h in lab:
                b |= 1 << h
            in_masks[u] = b
        self._out_masks = out_masks
        self._in_masks = in_masks

    def attach_masks(self, out_masks: List[int], in_masks: List[int]) -> "LabelSet":
        """Seal around bigint label masks a construction already maintains.

        ``out_masks[u]`` must have bit ``h`` set iff ``h in lout[u]``
        (likewise for the in side) — Distribution-Labeling's pruning
        bitsets satisfy this by construction, so its seal costs nothing
        extra.  This *is* a seal: the hybrid mirror layer is left empty
        (masks answer every query) and any cached arena is invalidated.
        A later plain :meth:`seal` drops the masks again (they would be
        stale after label mutations); incremental mutators instead keep
        them coherent via :meth:`or_in_mask`.
        """
        if len(out_masks) != self.n or len(in_masks) != self.n:
            raise ValueError("mask arrays do not match vertex count")
        self._out_hops = self._out_offs = None
        self._in_hops = self._in_offs = None
        self._out_masks = out_masks
        self._in_masks = in_masks
        self.lout_sets = [None] * self.n
        self._generation += 1
        return self

    def or_in_mask(self, v: int, mask: int) -> None:
        """OR extra hop bits into ``v``'s in-side mask (if masks exist).

        The incremental oracle calls this after merging hops into
        ``lin[v]`` so the mask fast path stays coherent.  Any cached
        in-side arena (and, through the generation bump, any batch
        engine snapshot) is invalidated: both were built from the
        pre-merge ``lin`` lists.
        """
        if self._in_masks is not None:
            self._in_masks[v] |= mask
        self._in_hops = self._in_offs = None
        self._generation += 1

    def drop_masks(self) -> None:
        """Discard mask acceleration and re-seal onto the hybrid path.

        Without the re-seal the mirror layer would still be empty (a
        mask-backed seal never builds it) and every query would degrade
        to a linear arena scan.
        """
        self._out_masks = None
        self._in_masks = None
        self._generation += 1
        if self.sealed:
            self.seal()

    @property
    def sealed(self) -> bool:
        """Whether the labels are in a compiled query-ready state.

        True after :meth:`seal` / :meth:`attach_masks`, and for
        arena-backed label sets straight off :meth:`from_arena` (the
        arena *is* their sealed layout; materialising the lists drops
        back to unsealed until the caller re-seals).
        """
        return self.lout_sets is not None or self._arena_backed

    @property
    def generation(self) -> int:
        """Mutation counter for snapshot-based accelerators.

        Bumped by :meth:`seal`, :meth:`attach_masks`, :meth:`drop_masks`
        and :meth:`or_in_mask`; the vectorized batch engine
        (:mod:`repro.kernels.batchquery`) compares it to detect that its
        arena snapshot went stale.
        """
        return self._generation

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _arena_query(self, u: int, v: int) -> bool:
        """Merge-scan ``Lout(u) ∩ Lin(v)`` straight off the arena.

        The scalar query path of arena-backed (mmap-served) labels: two
        slice views and an adaptive intersection, no per-vertex lists.
        """
        oo = self._out_offs
        a, b = oo[u], oo[u + 1]
        if a == b:
            return False
        io_ = self._in_offs
        c, d = io_[v], io_[v + 1]
        if c == d:
            return False
        return intersects(self._out_hops[a:b], self._in_hops[c:d])

    def query(self, u: int, v: int) -> bool:
        """Whether ``Lout(u) ∩ Lin(v) ≠ ∅``."""
        masks = self._out_masks
        if masks is not None:
            return masks[u] & self._in_masks[v] != 0
        if self._lout is None:
            return self._arena_query(u, v)
        sets = self.lout_sets
        if sets is not None:
            s = sets[u]
            lv = self.lin[v]
            if s is not None:
                return not s.isdisjoint(lv)
            _, offs = self._out_arena()
            a, b = offs[u], offs[u + 1]
            if a == b:
                return False
            hops = self._out_hops
            if b == a + 1:  # the common tiny case: a singleton label
                return hops[a] in lv
            for i in range(a, b):
                if hops[i] in lv:
                    return True
            return False
        return intersects(self.lout[u], self.lin[v])

    def query_batch(self, pairs: Iterable[Tuple[int, int]]) -> List[bool]:
        """Answer a whole workload in one pass with locals bound once.

        This is the hot path of the benchmark harness: a single
        comprehension (masks) or a single loop (hybrid) instead of three
        levels of per-pair method dispatch.

        Accepts any iterable of pairs, including a NumPy ``(P, 2)``
        array (normalised up front — iterating array rows through the
        scalar loops would box every element twice).  The oracles route
        large arena-layout batches to the vectorized engine in
        :mod:`repro.kernels.batchquery` instead of this method.
        """
        if not isinstance(pairs, (list, tuple)):
            to_list = getattr(pairs, "tolist", None)
            pairs = to_list() if to_list is not None else list(pairs)
        masks = self._out_masks
        if masks is not None:
            in_masks = self._in_masks
            return [masks[u] & in_masks[v] != 0 for u, v in pairs]
        if self._lout is None:
            # Arena-backed labels: per-pair merge-scans off the mmap
            # (the oracles route big batches to the vectorized engine
            # before reaching this loop).
            q = self._arena_query
            return [q(u, v) for u, v in pairs]
        sets = self.lout_sets
        lin = self.lin
        if sets is not None:
            hops, offs = self._out_arena()
            out: List[bool] = []
            append = out.append
            for u, v in pairs:
                s = sets[u]
                if s is not None:
                    append(not s.isdisjoint(lin[v]))
                    continue
                a = offs[u]
                b = offs[u + 1]
                if a == b:
                    append(False)
                elif b == a + 1:  # singleton label: one C membership probe
                    append(hops[a] in lin[v])
                else:
                    lv = lin[v]
                    hit = False
                    for i in range(a, b):
                        if hops[i] in lv:
                            hit = True
                            break
                    append(hit)
            return out
        lout = self.lout
        return [intersects(lout[u], lin[v]) for u, v in pairs]

    def witness(self, u: int, v: int) -> Optional[int]:
        """A common hop certifying ``u -> v``, or ``None``."""
        return first_common_hop(self.lout[u], self.lin[v])

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def size_ints(self) -> int:
        """Total number of integers stored — the paper's index-size metric."""
        if self._lout is None:
            return len(self._out_hops) + len(self._in_hops)
        return sum(len(x) for x in self.lout) + sum(len(x) for x in self.lin)

    def max_label_len(self) -> int:
        """Length of the longest single label (the L in the complexity bounds)."""
        if self._lout is None:
            longest = 0
            for offs in (self._out_offs, self._in_offs):
                for u in range(self.n):
                    width = offs[u + 1] - offs[u]
                    if width > longest:
                        longest = width
            return int(longest)
        longest_out = max((len(x) for x in self.lout), default=0)
        longest_in = max((len(x) for x in self.lin), default=0)
        return max(longest_out, longest_in)

    def average_label_len(self) -> float:
        """Mean of |Lout(v)| + |Lin(v)| over vertices."""
        if self.n == 0:
            return 0.0
        return self.size_ints() / self.n

    def check_sorted(self) -> bool:
        """Whether every label is strictly increasing (test invariant)."""
        if self._lout is None:
            for hops, offs in (
                (self._out_hops, self._out_offs),
                (self._in_hops, self._in_offs),
            ):
                for u in range(self.n):
                    for i in range(offs[u] + 1, offs[u + 1]):
                        if hops[i - 1] >= hops[i]:
                            return False
            return True
        for labels in (self.lout, self.lin):
            for lab in labels:
                for i in range(1, len(lab)):
                    if lab[i - 1] >= lab[i]:
                        return False
        return True

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by :mod:`repro.serialization`)."""
        return {"n": self.n, "lout": self.lout, "lin": self.lin}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LabelSet":
        """Inverse of :meth:`to_dict`."""
        ls = cls(int(data["n"]))
        ls.lout = [list(map(int, x)) for x in data["lout"]]
        ls.lin = [list(map(int, x)) for x in data["lin"]]
        if len(ls.lout) != ls.n or len(ls.lin) != ls.n:
            raise ValueError("label arrays do not match vertex count")
        return ls

    def __repr__(self) -> str:
        return f"LabelSet(n={self.n}, ints={self.size_ints()})"


def merge_sorted_unique(lists: Iterable[Sequence[int]]) -> List[int]:
    """Union of several sorted sequences as a sorted de-duplicated list.

    Used by Hierarchical-Labeling when folding backbone labels into a
    lower-level vertex (Formulas 4 and 5 of the paper).
    """
    merged = set()
    for lst in lists:
        merged.update(lst)
    return sorted(merged)
