"""Core contribution: label containers, backbone hierarchy, HL and DL."""

from .base import ReachabilityIndex, get_method, method_registry
from .labels import LabelSet, intersects, sorted_intersect, gallop_intersect
from .order import degree_product_order, get_order
from .backbone import (
    BackboneLevel,
    Hierarchy,
    build_backbone_level,
    extract_cover,
    hierarchical_decomposition,
)
from .distribution import DistributionLabeling, distribution_labels
from .dynamic import DynamicDL
from .hierarchical import HierarchicalLabeling, hierarchical_labels

__all__ = [
    "ReachabilityIndex",
    "get_method",
    "method_registry",
    "LabelSet",
    "intersects",
    "sorted_intersect",
    "gallop_intersect",
    "degree_product_order",
    "get_order",
    "BackboneLevel",
    "Hierarchy",
    "build_backbone_level",
    "extract_cover",
    "hierarchical_decomposition",
    "DistributionLabeling",
    "distribution_labels",
    "DynamicDL",
    "HierarchicalLabeling",
    "hierarchical_labels",
]
