"""SCARAB backbone framework and the GRAIL*/PT* wrapped variants."""

from .framework import Scarab, ScarabGrail, ScarabPathTree

__all__ = ["Scarab", "ScarabGrail", "ScarabPathTree"]
