"""SCARAB — scaling reachability computation via a backbone (§2.3).

Jin, Ruan, Dey & Yu (SIGMOD 2012).  SCARAB is a *wrapper*: extract a
one-side reachability backbone ``G* = (V*, E*)`` with locality ε, build
any existing reachability index on the (much smaller) ``G*``, and answer
queries in three steps:

1. local check — ε-bounded BFS from ``u``; if it meets ``v``, done;
2. collect *entries* (backbone vertices within ε forward of ``u``) and
   *exits* (backbone vertices within ε backward of ``v``);
3. report True iff some entry reaches some exit on ``G*`` per the inner
   index.

Correctness follows from the backbone property (Definition 1 /
Lemma 1): non-local reachable pairs always route through an
entry -> exit pair, local pairs are caught by step 1, and ``E*`` edges
only join genuinely reachable pairs, so there are no false positives.

The paper's GRAIL* and PATH-TREE* (PT*) are SCARAB-wrapped GRAIL and
PathTree with ε = 2; the registry exposes them as ``GL*`` and ``PT*``.
The trade-off the paper reports — backbone queries are typically 2-3×
slower than the raw index, but the index now only has to handle ~1/10
of the vertices — is visible in Tables 2-7 and reproduced by our
benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..graph.digraph import DiGraph
from ..core.backbone import build_backbone_level
from ..core.base import ReachabilityIndex, register_factory
from ..core.order import degree_product_order

__all__ = ["Scarab", "ScarabGrail", "ScarabPathTree"]


class Scarab(ReachabilityIndex):
    """SCARAB wrapper around an inner reachability index.

    Parameters
    ----------
    graph:
        The DAG to index.
    inner_factory:
        Callable ``DiGraph -> ReachabilityIndex`` building the index used
        on the backbone graph.
    eps:
        Locality threshold (paper setting: 2).
    """

    short_name = "SCARAB"
    full_name = "SCARAB backbone wrapper"

    def _build(
        self,
        graph: DiGraph,
        inner_factory: Callable[[DiGraph], ReachabilityIndex] = None,
        eps: int = 2,
        seed: int = 0,
    ) -> None:
        if inner_factory is None:
            raise ValueError("Scarab requires an inner_factory")
        self.eps = eps
        level = build_backbone_level(
            graph, eps=eps, order_fn=degree_product_order, seed=seed
        )
        self.level = level
        self._in_backbone = bytearray(graph.n)
        for v in level.backbone_vertices:
            self._in_backbone[v] = 1
        self._to_backbone = level.to_backbone
        self.inner = inner_factory(level.backbone_graph)
        self._out = graph.out_adj
        self._in = graph.in_adj

    # ------------------------------------------------------------------
    def _local_and_entries(self, adj, source: int, target: int):
        """ε-BFS from ``source``; returns (hit_target, backbone_found)."""
        eps = self.eps
        dist = {source: 0}
        frontier = [source]
        entries: List[int] = []
        if self._in_backbone[source]:
            entries.append(source)
        d = 0
        while frontier and d < eps:
            d += 1
            nxt = []
            for u in frontier:
                for w in adj[u]:
                    if w == target:
                        return True, entries
                    if w not in dist:
                        dist[w] = d
                        nxt.append(w)
                        if self._in_backbone[w]:
                            entries.append(w)
            frontier = nxt
        return False, entries

    def query(self, u: int, v: int) -> bool:
        if u == v:
            return True
        hit, entries = self._local_and_entries(self._out, u, v)
        if hit:
            return True
        if not entries:
            return False
        _, exits = self._local_and_entries(self._in, v, u)
        if not exits:
            return False
        to_b = self._to_backbone
        inner_q = self.inner.query
        for e in entries:
            be = to_b[e]
            for x in exits:
                if inner_q(be, to_b[x]):
                    return True
        return False

    def compile(self):
        """ε-BFS arrays + backbone translation + compiled inner oracle."""
        from ..core.compiled import CompiledScarab

        return CompiledScarab.from_index(self)

    def index_size_ints(self) -> int:
        # Inner index + backbone membership/translation arrays.
        return self.inner.index_size_ints() + 2 * self.graph.n

    def stats(self) -> Dict[str, object]:
        base = super().stats()
        base.update(
            {
                "backbone_vertices": len(self.level.backbone_vertices),
                "backbone_edges": self.level.backbone_graph.m,
                "inner": self.inner.short_name,
            }
        )
        return base


def ScarabGrail(graph: DiGraph, k: int = 5, eps: int = 2, seed: int = 0) -> Scarab:
    """GRAIL* — SCARAB-accelerated GRAIL (abbreviation ``GL*``)."""
    from ..baselines.grail import Grail

    idx = Scarab(graph, inner_factory=lambda g: Grail(g, k=k, seed=seed), eps=eps, seed=seed)
    idx.short_name = "GL*"
    idx.full_name = "GRAIL* (SCARAB)"
    return idx


def ScarabPathTree(graph: DiGraph, eps: int = 2, seed: int = 0) -> Scarab:
    """PT* — SCARAB-scaled PathTree (abbreviation ``PT*``)."""
    from ..baselines.pathtree import PathTree

    idx = Scarab(graph, inner_factory=lambda g: PathTree(g), eps=eps, seed=seed)
    idx.short_name = "PT*"
    idx.full_name = "PATH-TREE* (SCARAB)"
    return idx


register_factory("GL*", ScarabGrail)
register_factory("PT*", ScarabPathTree)
