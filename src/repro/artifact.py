"""Binary artifact container: header JSON + raw little-endian arrays.

The serve half of the build → compile → serve lifecycle needs an
on-disk format that (a) restores a compiled oracle without touching the
Python object graph that built it, and (b) lets N serving processes
share one physical copy of the big arrays.  Both rule out the v1 JSON
label dump, so compiled oracles persist through this container instead:

* 8-byte magic ``RPROART2`` and a little-endian ``uint64`` header
  length,
* a UTF-8 JSON header — format version, oracle kind, free-form ``meta``,
  and a section table (name → dtype, element count, byte offset),
* the raw array sections, each 64-byte aligned, values little-endian.

Sections are written with the smallest unsigned dtype the values fit
(``<u1``/``<u2``/``<u4``; signed and 8-byte variants are available for
callers that pin a dtype — offsets pin ``<i8`` so the batch engine can
use them without an upcast copy).

Loading defaults to **memory-mapping**: with NumPy the sections come
back as zero-copy ``ndarray`` views over one shared ``mmap``, so every
serving process maps the same page-cache copy; without NumPy the same
mapping is exposed through ``memoryview.cast`` (indexing, slicing and
``bisect`` all work, which is all the scalar query paths need).
``mmap=False`` reads plain ``array`` copies instead — the fallback for
big-endian hosts and for callers that want to close the file.
"""

from __future__ import annotations

import json
import mmap as _mmap
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "Artifact",
    "write_artifact",
    "read_artifact",
    "read_artifact_header",
    "pack_section",
]

MAGIC = b"RPROART2"
FORMAT_VERSION = 2

_ALIGN = 64

#: dtype tag -> (itemsize, preferred array typecode)
_DTYPES: Dict[str, Tuple[int, str]] = {
    "<u1": (1, "B"),
    "<u2": (2, "H"),
    "<u4": (4, "I"),
    "<u8": (8, "Q"),
    "<i4": (4, "i"),
    "<i8": (8, "q"),
}

_LITTLE = sys.byteorder == "little"

PathLike = Union[str, Path]


def _typecode_for(dtype: str) -> str:
    """An ``array`` typecode with the dtype's exact itemsize.

    The preferred codes match CPython's sizes on every mainstream
    platform; the scan is a safety net for exotic C type widths.
    """
    itemsize, preferred = _DTYPES[dtype]
    if array(preferred).itemsize == itemsize:
        return preferred
    for code in "BHILQbhilq":
        if array(code).itemsize == itemsize:
            return code
    raise ValueError(f"no array typecode with itemsize {itemsize}")


def _min_uint_dtype(max_value: int) -> str:
    if max_value < 1 << 8:
        return "<u1"
    if max_value < 1 << 16:
        return "<u2"
    if max_value < 1 << 32:
        return "<u4"
    return "<u8"


def pack_section(data, dtype: Optional[str] = None) -> Tuple[str, bytes]:
    """Encode an int sequence as ``(dtype, little-endian bytes)``.

    ``dtype=None`` scans the values and picks the smallest unsigned
    dtype that fits (``<i8`` when negatives occur) — the size lever that
    makes binary artifacts beat the JSON path on disk.
    """
    from .kernels import numpy_or_none

    np = numpy_or_none()
    if np is not None and isinstance(data, np.ndarray):
        arr = data.reshape(-1)
        if dtype is None:
            if len(arr) == 0:
                dtype = "<u1"
            else:
                lo = int(arr.min())
                hi = int(arr.max())
                dtype = "<i8" if lo < 0 else _min_uint_dtype(hi)
        return dtype, np.ascontiguousarray(arr, dtype=np.dtype(dtype)).tobytes()

    seq = data if isinstance(data, (list, tuple, array)) else list(data)
    if dtype is None:
        if len(seq) == 0:
            dtype = "<u1"
        else:
            lo = min(seq)
            hi = max(seq)
            dtype = "<i8" if lo < 0 else _min_uint_dtype(int(hi))
    buf = array(_typecode_for(dtype), seq)
    if not _LITTLE:
        buf.byteswap()
    return dtype, buf.tobytes()


def write_artifact(
    path: PathLike,
    kind: str,
    meta: Dict[str, object],
    sections: Dict[str, Tuple[str, bytes]],
    compress: bool = False,
) -> int:
    """Write one artifact file; returns the byte size written.

    ``sections`` maps name -> ``(dtype, payload_bytes)`` as produced by
    :func:`pack_section`.  Section order follows dict order, each
    payload 64-byte aligned so mmapped arrays stay alignment-friendly.

    ``compress=True`` deflates every section (the *compact* profile):
    smallest on disk, but loading inflates into private memory, so the
    multi-process page-cache sharing of the raw profile is lost.
    """
    table: Dict[str, Dict[str, object]] = {}
    # Lay sections out before writing: the header must know offsets,
    # and the header's own length shifts them, so fix the header first
    # by serialising with a placeholder pass.
    order: list = []
    for name, (dtype, payload) in sections.items():
        if dtype not in _DTYPES:
            raise ValueError(f"unsupported section dtype {dtype!r}")
        itemsize = _DTYPES[dtype][0]
        if len(payload) % itemsize:
            raise ValueError(f"section {name!r} payload not a multiple of itemsize")
        count = len(payload) // itemsize
        if compress:
            payload = zlib.compress(payload, 6)
            order.append((name, dtype, payload, count, "zlib"))
        else:
            order.append((name, dtype, payload, count, "raw"))

    def render_header(tbl) -> bytes:
        doc = {
            "format_version": FORMAT_VERSION,
            "kind": kind,
            "meta": meta,
            "sections": tbl,
        }
        return json.dumps(doc, separators=(",", ":"), sort_keys=True).encode("utf-8")

    # Two-pass: offsets depend on header size, header size depends on
    # offsets' digits.  Iterate until stable (converges in <= 3 rounds).
    header = render_header({})
    for _ in range(8):
        base = len(MAGIC) + 8 + len(header)
        base += (-base) % _ALIGN
        off = base
        table = {}
        for name, dtype, payload, count, enc in order:
            off += (-off) % _ALIGN
            spec = {
                "dtype": dtype,
                "count": count,
                "offset": off,
            }
            if enc != "raw":
                spec["enc"] = enc
                spec["stored_bytes"] = len(payload)
            table[name] = spec
            off += len(payload)
        new_header = render_header(table)
        if len(new_header) == len(header):
            header = new_header
            break
        header = new_header
    else:  # pragma: no cover - layout always stabilises
        raise RuntimeError("artifact header layout did not stabilise")

    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(struct.pack("<Q", len(header)))
        f.write(header)
        pos = len(MAGIC) + 8 + len(header)
        for name, dtype, payload, count, enc in order:
            pad = (-pos) % _ALIGN
            f.write(b"\x00" * pad)
            pos += pad
            assert pos == table[name]["offset"]
            f.write(payload)
            pos += len(payload)
        return pos


class Artifact:
    """A parsed artifact: ``kind``, ``meta``, and lazily-decoded sections.

    Holds the backing ``mmap`` (when mapped) alive for as long as any
    returned array is referenced.
    """

    def __init__(self, path: PathLike, kind: str, meta: Dict[str, object],
                 table: Dict[str, Dict[str, object]], buffer, mapped: bool) -> None:
        self.path = str(path)
        self.kind = kind
        self.meta = meta
        self._table = table
        self._buffer = buffer  # mmap object, or raw bytes in copy mode
        self.mapped = mapped
        self.closed = False
        self._cache: Dict[str, object] = {}

    def section_names(self) -> Iterable[str]:
        return self._table.keys()

    def has_section(self, name: str) -> bool:
        return name in self._table

    def section(self, name: str):
        """The named section as a flat int array (zero-copy when mapped).

        Returns an ``ndarray`` when NumPy is importable, otherwise a
        ``memoryview`` cast (mapped) or ``array`` copy.
        """
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        try:
            spec = self._table[name]
        except KeyError:
            known = ", ".join(sorted(self._table))
            raise KeyError(f"artifact has no section {name!r}; known: {known}") from None
        dtype = spec["dtype"]
        itemsize = _DTYPES[dtype][0]
        off = spec["offset"]
        enc = spec.get("enc", "raw")
        if enc == "zlib":
            # Compact profile: inflate into private memory (no sharing).
            raw = zlib.decompress(
                memoryview(self._buffer)[off : off + spec["stored_bytes"]]
            )
            buffer, boff = raw, 0
        elif enc == "raw":
            buffer, boff = self._buffer, off
        else:
            raise ValueError(f"unsupported section encoding {enc!r}")
        nbytes = spec["count"] * itemsize
        from .kernels import numpy_or_none

        np = numpy_or_none()
        if np is not None:
            arr = np.frombuffer(buffer, dtype=np.dtype(dtype), count=spec["count"], offset=boff)
            if not _LITTLE:  # pragma: no cover - big-endian hosts
                arr = arr.byteswap().view(arr.dtype.newbyteorder())
            self._cache[name] = arr
            return arr
        view = memoryview(buffer)[boff : boff + nbytes]
        if _LITTLE:
            arr = view.cast(_typecode_for(dtype))
        else:  # pragma: no cover - big-endian hosts
            copy = array(_typecode_for(dtype))
            copy.frombytes(view.tobytes())
            copy.byteswap()
            arr = copy
        self._cache[name] = arr
        return arr

    def close(self) -> None:
        """Release the backing mapping (the live store's drain step).

        Dropping an :class:`Artifact` normally lets the garbage
        collector unmap the file whenever the last array view dies; a
        versioned serving process cannot wait for that — a retired
        epoch's mapping must be returned to the OS as soon as its last
        in-flight batch drains.  Closing while ndarray/memoryview
        sections are still referenced elsewhere would invalidate them
        mid-read, so only a caller that *owns* the artifact's lifetime
        (e.g. :class:`repro.live.VersionedArtifactStore`, which
        refcounts leases per batch) may call this.  Idempotent; the
        copy mode (``mapped=False``) just drops its byte buffer.
        """
        if self.closed:
            return
        self.closed = True
        self._cache.clear()
        buffer, self._buffer = self._buffer, None
        if self.mapped and buffer is not None:
            try:
                buffer.close()
            except (BufferError, ValueError):
                # A section view escaped the owner's control: leave the
                # mapping to the GC rather than crash a reader.
                self._buffer = buffer
                self.closed = False

    def __repr__(self) -> str:
        return f"Artifact(kind={self.kind!r}, sections={len(self._table)}, mapped={self.mapped})"


def _parse_header(head: bytes):
    if head[: len(MAGIC)] != MAGIC:
        raise ValueError("not a repro artifact (bad magic)")
    (hlen,) = struct.unpack_from("<Q", head, len(MAGIC))
    start = len(MAGIC) + 8
    doc = json.loads(head[start : start + hlen].decode("utf-8"))
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported artifact version: {version!r}")
    return doc


def read_artifact_header(path: PathLike) -> Dict[str, object]:
    """Parse just the JSON header (kind/meta/section table) of ``path``."""
    with open(path, "rb") as f:
        head = f.read(len(MAGIC) + 8)
        if len(head) < len(MAGIC) + 8 or head[: len(MAGIC)] != MAGIC:
            raise ValueError("not a repro artifact (bad magic)")
        (hlen,) = struct.unpack_from("<Q", head, len(MAGIC))
        return _parse_header(head + f.read(hlen))


def read_artifact(path: PathLike, mmap: bool = True) -> Artifact:
    """Open an artifact; ``mmap=True`` (default) maps the file read-only.

    The mapping is what makes multi-process serving cheap: every process
    that loads the same artifact shares the one page-cache copy of the
    arrays.  ``mmap=False`` reads the file into private memory instead.
    """
    f = open(path, "rb")
    try:
        if mmap and _LITTLE:
            try:
                mapped = _mmap.mmap(f.fileno(), 0, access=_mmap.ACCESS_READ)
            except (ValueError, OSError):
                mapped = None
            if mapped is not None:
                if len(mapped) < len(MAGIC) + 8 or mapped[: len(MAGIC)] != MAGIC:
                    raise ValueError("not a repro artifact (bad magic)")
                (hlen,) = struct.unpack_from("<Q", mapped, len(MAGIC))
                doc = _parse_header(mapped[: len(MAGIC) + 8 + hlen])
                return Artifact(path, doc["kind"], doc["meta"], doc["sections"], mapped, True)
        raw = f.read()
    finally:
        f.close()
    doc = _parse_header(raw)
    return Artifact(path, doc["kind"], doc["meta"], doc["sections"], raw, False)
