"""Flat-array (CSR) adjacency view of a frozen :class:`DiGraph`.

The list-of-lists adjacency in :mod:`repro.graph.digraph` is the right
*mutable* representation, but a frozen graph is better served by the
compressed-sparse-row layout every fast graph engine uses: one flat
``targets`` array plus an ``offsets`` array with ``n + 1`` entries, so
vertex ``u``'s neighbours are ``targets[offsets[u]:offsets[u+1]]``.

Both directions are materialised because every labeling algorithm in the
paper traverses forwards and backwards.  The arrays are ``array('l')``:
compact (8 bytes per edge endpoint instead of a PyObject pointer + boxed
int), contiguous, and zero-copy convertible to NumPy via
:meth:`CSRView.as_numpy` for vectorised backends.

A note on CPython performance, measured in ``benchmarks/bench_kernels.py``
(``BENCH_kernels.json``): *iterating* an ``array('l')`` slice is slower
than iterating a plain list, because every element access must box the
integer, while list iteration reuses existing objects — enough that even
bigint-heavy kernels like the closure in :mod:`repro.graph.closure`
measure faster on lists.  The flat arrays are therefore the canonical
interchange/storage layout (compact, deterministic, NumPy-bridgeable),
and :meth:`CSRView.out_lists` / :meth:`CSRView.in_lists` hand the hot
interpreter loops the list-view (shared with the owning graph when
available) they actually consume.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence

__all__ = ["CSRView", "build_csr_arrays"]


def build_csr_arrays(adj: Sequence[Sequence[int]]):
    """Flatten list-of-lists adjacency into ``(offsets, targets)`` arrays."""
    offsets = array("l", [0])
    targets = array("l")
    total = 0
    for nbrs in adj:
        targets.extend(nbrs)
        total += len(nbrs)
        offsets.append(total)
    return offsets, targets


class CSRView:
    """Immutable CSR snapshot of a graph's adjacency (both directions).

    Built by :meth:`repro.graph.digraph.DiGraph.csr` after ``freeze()``;
    neighbour runs inherit the frozen graph's sorted order, so the view
    is deterministic and round-trips the adjacency exactly.

    Examples
    --------
    >>> from repro.graph.digraph import DiGraph
    >>> g = DiGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
    >>> csr = g.csr()
    >>> list(csr.out(0)), list(csr.inn(2))
    ([1, 2], [0, 1])
    >>> csr.n, csr.m
    (3, 3)
    """

    __slots__ = (
        "n",
        "m",
        "out_offsets",
        "out_targets",
        "in_offsets",
        "in_targets",
        "_graph",
        "_np_views",
    )

    def __init__(
        self,
        out_adj: Sequence[Sequence[int]],
        in_adj: Sequence[Sequence[int]],
        graph=None,
    ) -> None:
        self.n = len(out_adj)
        self.out_offsets, self.out_targets = build_csr_arrays(out_adj)
        self.in_offsets, self.in_targets = build_csr_arrays(in_adj)
        self.m = len(self.out_targets)
        self._graph = graph
        self._np_views = None

    # ------------------------------------------------------------------
    # Per-vertex access
    # ------------------------------------------------------------------
    def out(self, u: int) -> array:
        """Out-neighbours of ``u`` as a flat-array slice."""
        return self.out_targets[self.out_offsets[u] : self.out_offsets[u + 1]]

    def inn(self, u: int) -> array:
        """In-neighbours of ``u`` as a flat-array slice."""
        return self.in_targets[self.in_offsets[u] : self.in_offsets[u + 1]]

    def out_degree(self, u: int) -> int:
        return self.out_offsets[u + 1] - self.out_offsets[u]

    def in_degree(self, u: int) -> int:
        return self.in_offsets[u + 1] - self.in_offsets[u]

    # ------------------------------------------------------------------
    # Bulk views
    # ------------------------------------------------------------------
    def out_lists(self) -> List[List[int]]:
        """List-of-lists view of the forward adjacency.

        Shares the owning graph's lists when available (zero cost);
        otherwise materialises them from the flat arrays.
        """
        if self._graph is not None:
            return self._graph.out_adj
        return self._materialise(self.out_offsets, self.out_targets)

    def in_lists(self) -> List[List[int]]:
        """List-of-lists view of the reverse adjacency."""
        if self._graph is not None:
            return self._graph.in_adj
        return self._materialise(self.in_offsets, self.in_targets)

    @staticmethod
    def _materialise(offsets: array, targets: array) -> List[List[int]]:
        lst = targets.tolist()
        return [lst[offsets[u] : offsets[u + 1]] for u in range(len(offsets) - 1)]

    def edges(self):
        """Yield all ``(u, v)`` pairs in CSR order."""
        offs = self.out_offsets
        tgts = self.out_targets
        for u in range(self.n):
            for i in range(offs[u], offs[u + 1]):
                yield (u, tgts[i])

    # ------------------------------------------------------------------
    # NumPy bridge (optional dependency, already in the toolchain)
    # ------------------------------------------------------------------
    def as_numpy(self):
        """The four arrays as zero-copy NumPy views, built once.

        Returns ``(out_offsets, out_targets, in_offsets, in_targets)``.
        The views are cached on the ``CSRView`` — the kernel backends
        call this on every build/query-engine construction — and marked
        **read-only**: they alias the ``array('l')`` buffers of an
        immutable snapshot, so writing through them would silently
        corrupt the graph for every later consumer.  The dtype follows
        the platform's ``array('l')`` item size (4 bytes on LLP64
        Windows, 8 elsewhere) so the buffers are never misinterpreted.
        Raises ``ImportError`` when NumPy is unavailable.
        """
        if self._np_views is None:
            import numpy as np

            dtype = np.dtype(f"i{self.out_offsets.itemsize}")
            views = tuple(
                np.frombuffer(buf, dtype=dtype)
                for buf in (
                    self.out_offsets,
                    self.out_targets,
                    self.in_offsets,
                    self.in_targets,
                )
            )
            for view in views:
                view.flags.writeable = False
            self._np_views = views
        return self._np_views

    def size_bytes(self) -> int:
        """Memory footprint of the four flat arrays."""
        return sum(
            a.itemsize * len(a)
            for a in (self.out_offsets, self.out_targets, self.in_offsets, self.in_targets)
        )

    def __repr__(self) -> str:
        return f"CSRView(n={self.n}, m={self.m}, bytes={self.size_bytes()})"
