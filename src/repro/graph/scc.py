"""Strongly connected components and DAG condensation.

Reachability indices operate on DAGs.  Real inputs (web graphs, social
networks, email graphs — see Table 1 of the paper) contain cycles, so the
standard preprocessing step, which every method in the paper shares, is to
coalesce each strongly connected component (SCC) into a single vertex.
Two vertices in the same SCC trivially reach each other; across SCCs the
reachability question transfers unchanged to the condensation.

This module provides an **iterative** Tarjan SCC algorithm (no recursion,
so graphs with million-length chains do not hit Python's recursion limit)
and :func:`condense`, which produces the condensation DAG plus the
vertex-to-component mapping used by :class:`repro.facade.Reachability`.
"""

from __future__ import annotations

from typing import List

from .digraph import DiGraph

__all__ = ["strongly_connected_components", "condense", "Condensation"]


def strongly_connected_components(out_adj: List[List[int]], n: int) -> List[int]:
    """Tarjan's algorithm, iteratively.

    Parameters
    ----------
    out_adj:
        Forward adjacency lists.
    n:
        Number of vertices.

    Returns
    -------
    list[int]
        ``comp[v]`` is the component id of ``v``.  Component ids are
        assigned in *reverse topological order of the condensation*:
        component 0 is a sink component, and if component ``a`` reaches
        component ``b`` in the condensation then ``a > b``.  (This is the
        natural order Tarjan emits and is convenient for bottom-up TC
        computation.)
    """
    UNVISITED = -1
    index_counter = 0
    scc_counter = 0
    index = [UNVISITED] * n
    lowlink = [0] * n
    on_stack = [False] * n
    comp = [UNVISITED] * n
    stack: List[int] = []

    # Explicit DFS work stack of (vertex, next-child-pointer) frames.
    for root in range(n):
        if index[root] != UNVISITED:
            continue
        work = [(root, 0)]
        while work:
            v, child_ptr = work.pop()
            if child_ptr == 0:
                index[v] = index_counter
                lowlink[v] = index_counter
                index_counter += 1
                stack.append(v)
                on_stack[v] = True
            recurse = False
            adj = out_adj[v]
            for ci in range(child_ptr, len(adj)):
                w = adj[ci]
                if index[w] == UNVISITED:
                    # Pause v, descend into w.
                    work.append((v, ci + 1))
                    work.append((w, 0))
                    recurse = True
                    break
                if on_stack[w] and index[w] < lowlink[v]:
                    lowlink[v] = index[w]
            if recurse:
                continue
            # v is finished: maybe it is an SCC root.
            if lowlink[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp[w] = scc_counter
                    if w == v:
                        break
                scc_counter += 1
            # Propagate lowlink to the parent frame, if any.
            if work:
                parent = work[-1][0]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]
    return comp


class Condensation:
    """Result of condensing a digraph.

    Attributes
    ----------
    dag:
        The condensation :class:`DiGraph` (guaranteed acyclic).
    comp:
        ``comp[v]`` maps original vertex ``v`` to its DAG vertex.
    members:
        ``members[c]`` lists the original vertices inside DAG vertex ``c``.
    """

    __slots__ = ("dag", "comp", "members")

    def __init__(self, dag: DiGraph, comp: List[int], members: List[List[int]]) -> None:
        self.dag = dag
        self.comp = comp
        self.members = members

    @property
    def n_components(self) -> int:
        """Number of SCCs (vertices of the condensation)."""
        return self.dag.n

    def component_of(self, v: int) -> int:
        """DAG vertex containing original vertex ``v``."""
        return self.comp[v]

    def component_sizes(self) -> List[int]:
        """Number of original vertices in each component."""
        return [len(m) for m in self.members]

    def __repr__(self) -> str:
        return f"Condensation(components={self.dag.n}, dag_edges={self.dag.m})"


def condense(graph: DiGraph) -> Condensation:
    """Coalesce SCCs of ``graph`` into a DAG.

    Self-loops and intra-component edges disappear; parallel inter-
    component edges are deduplicated by :class:`DiGraph` itself.

    Examples
    --------
    >>> g = DiGraph(4)
    >>> for u, v in [(0, 1), (1, 0), (1, 2), (2, 3)]:
    ...     _ = g.add_edge(u, v)
    >>> c = condense(g)
    >>> c.n_components
    3
    >>> c.comp[0] == c.comp[1]
    True
    """
    comp = strongly_connected_components(graph.out_adj, graph.n)
    n_comp = (max(comp) + 1) if comp else 0
    dag = DiGraph(n_comp)
    for u in graph.vertices():
        cu = comp[u]
        for v in graph.out(u):
            cv = comp[v]
            if cu != cv and not dag.has_edge(cu, cv):
                dag.add_edge(cu, cv)
    dag.freeze()
    members: List[List[int]] = [[] for _ in range(n_comp)]
    for v, c in enumerate(comp):
        members[c].append(v)
    return Condensation(dag, comp, members)
