"""Graph traversal primitives shared by every index builder.

All labeling algorithms in the paper are built from four traversal
shapes: unbounded BFS/DFS (online search baseline, ground truth),
depth-bounded BFS (FastCover backbone extraction, SCARAB local entry/exit
collection), and pruned BFS (Distribution-Labeling).  The unbounded and
bounded variants live here; pruned BFS is fused into its algorithm for
speed.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence

__all__ = [
    "bfs_reachable",
    "bfs_reaches",
    "bfs_within",
    "neighborhood_within",
    "collect_targets_within",
]


def bfs_reachable(out_adj: Sequence[Sequence[int]], source: int) -> List[int]:
    """All vertices reachable from ``source`` (including ``source``).

    Returned in BFS discovery order.
    """
    seen = {source}
    order = [source]
    queue = deque((source,))
    while queue:
        u = queue.popleft()
        for w in out_adj[u]:
            if w not in seen:
                seen.add(w)
                order.append(w)
                queue.append(w)
    return order


def bfs_reaches(out_adj: Sequence[Sequence[int]], source: int, target: int) -> bool:
    """Whether ``source`` reaches ``target`` (early-exit BFS)."""
    if source == target:
        return True
    seen = {source}
    queue = deque((source,))
    while queue:
        u = queue.popleft()
        for w in out_adj[u]:
            if w == target:
                return True
            if w not in seen:
                seen.add(w)
                queue.append(w)
    return False


def bfs_within(out_adj: Sequence[Sequence[int]], source: int, depth: int) -> Dict[int, int]:
    """Vertices within ``depth`` hops of ``source``.

    Returns ``{vertex: distance}`` including ``source`` at distance 0.
    This is the ε-step BFS of SCARAB's FastCover and of the SCARAB query
    procedure (collecting local entries/exits).
    """
    dist = {source: 0}
    frontier = [source]
    d = 0
    while frontier and d < depth:
        d += 1
        nxt: List[int] = []
        for u in frontier:
            for w in out_adj[u]:
                if w not in dist:
                    dist[w] = d
                    nxt.append(w)
        frontier = nxt
    return dist


def neighborhood_within(
    out_adj: Sequence[Sequence[int]], source: int, depth: int
) -> List[int]:
    """Sorted list of vertices within ``depth`` hops of ``source``."""
    return sorted(bfs_within(out_adj, source, depth))


def collect_targets_within(
    out_adj: Sequence[Sequence[int]],
    source: int,
    depth: int,
    is_target,
) -> Dict[int, int]:
    """Targets (per predicate) within ``depth`` hops, with distances.

    Used to collect backbone entries/exits: ``is_target`` is typically a
    membership test against the backbone vertex set.  The source itself is
    included when it satisfies the predicate.
    """
    found: Dict[int, int] = {}
    if is_target(source):
        found[source] = 0
    dist = {source: 0}
    frontier = [source]
    d = 0
    while frontier and d < depth:
        d += 1
        nxt: List[int] = []
        for u in frontier:
            for w in out_adj[u]:
                if w not in dist:
                    dist[w] = d
                    nxt.append(w)
                    if is_target(w):
                        found[w] = d
        frontier = nxt
    return found
