"""Reference transitive closure (TC) computation.

The paper's central argument is that materialising the transitive closure
is what makes classic 2-hop construction unscalable.  We still need TC in
three places:

1. ground truth for correctness tests,
2. the 2HOP set-cover baseline (which *by definition* materialises TC),
3. positive-pair sampling for the "equal" query workload of §6.1.

TC is represented as one Python big integer per vertex used as a bitset:
bit ``v`` of ``tc[u]`` is 1 iff ``u`` reaches ``v`` (reflexively,
``u`` reaches ``u``).  Big-int OR is implemented in C inside CPython, so
this is by far the fastest portable representation; it is also the
memory hog the paper complains about, which is exactly the point.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .digraph import DiGraph
from .topo import topological_order

__all__ = [
    "transitive_closure_bits",
    "reverse_transitive_closure_bits",
    "tc_size",
    "closure_pairs_count",
    "bitset_to_list",
    "sample_reachable_pair",
]


def transitive_closure_bits(graph: DiGraph, order: Optional[List[int]] = None) -> List[int]:
    """Compute reflexive TC bitsets bottom-up in reverse topological order.

    ``tc[u] = {u} ∪ tc[w1] ∪ tc[w2] ∪ ...`` over out-neighbours ``wi``.

    Parameters
    ----------
    graph:
        A DAG.
    order:
        Optional precomputed topological order (saves recomputation when
        the caller already has one).

    Raises
    ------
    ValueError
        If the graph is not a DAG.
    """
    if order is None:
        order = topological_order(graph)
        if order is None:
            raise ValueError("transitive closure requires a DAG; condense first")
    tc = [0] * graph.n
    # List adjacency, bound once: indexing array('l') CSR slices boxes
    # every element and measures ~45% slower here (see the bfs entry in
    # benchmarks/BENCH_kernels.json), so this kernel stays on the list
    # view of the layout.
    out_adj = graph.out_adj
    for u in reversed(order):
        bits = 1 << u
        for w in out_adj[u]:
            bits |= tc[w]
        tc[u] = bits
    return tc


def reverse_transitive_closure_bits(
    graph: DiGraph, order: Optional[List[int]] = None
) -> List[int]:
    """Reflexive *reverse* TC: bit ``v`` of ``rtc[u]`` iff ``v`` reaches ``u``."""
    if order is None:
        order = topological_order(graph)
        if order is None:
            raise ValueError("transitive closure requires a DAG; condense first")
    rtc = [0] * graph.n
    in_adj = graph.in_adj
    for u in order:
        bits = 1 << u
        for w in in_adj[u]:
            bits |= rtc[w]
        rtc[u] = bits
    return rtc


def tc_size(tc: List[int]) -> int:
    """Total number of (u, v) pairs in the closure, including reflexive pairs."""
    return sum(bits.bit_count() for bits in tc)


def closure_pairs_count(graph: DiGraph) -> int:
    """Number of *distinct-vertex* reachable pairs ``u -> v`` (u != v)."""
    tc = transitive_closure_bits(graph)
    return tc_size(tc) - graph.n


def bitset_to_list(bits: int) -> List[int]:
    """Decode a bitset into a sorted list of vertex ids."""
    out: List[int] = []
    v = 0
    while bits:
        chunk = bits & 0xFFFFFFFFFFFFFFFF
        while chunk:
            low = chunk & -chunk
            out.append(v + low.bit_length() - 1)
            chunk ^= low
        bits >>= 64
        v += 64
    return out


def sample_reachable_pair(
    tc: List[int], rng, n: int, max_tries: int = 64
) -> Optional[Tuple[int, int]]:
    """Sample a positive (reachable, u != v) pair using the TC bitsets.

    Picks a random source biased by nothing (uniform over vertices), then a
    uniform random member of its closure.  Returns ``None`` if ``max_tries``
    sources in a row had empty non-reflexive closures.
    """
    for _ in range(max_tries):
        u = rng.randrange(n)
        bits = tc[u] & ~(1 << u)
        count = bits.bit_count()
        if count == 0:
            continue
        k = rng.randrange(count)
        # Select the k-th set bit.
        v = _kth_set_bit(bits, k)
        return (u, v)
    return None


def _kth_set_bit(bits: int, k: int) -> int:
    """Index of the k-th (0-based) set bit of ``bits``."""
    idx = 0
    while True:
        chunk = bits & 0xFFFFFFFFFFFFFFFF
        c = chunk.bit_count()
        if k < c:
            while True:
                low = chunk & -chunk
                if k == 0:
                    return idx + low.bit_length() - 1
                chunk ^= low
                k -= 1
        k -= c
        bits >>= 64
        idx += 64
