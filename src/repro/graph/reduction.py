"""Transitive reduction of a DAG.

Definition 1 of the paper notes that backbone edges "can be simplified
as a transitive reduction (the minimal edge set preserving the
reachability)" but that computing it exactly "is as expensive as
transitive closure" — which is why the backbone uses the cheaper
domination rule instead.  We provide the exact algorithm anyway: it is
a useful preprocessing step for small graphs (smaller inputs make every
index smaller) and it lets tests quantify exactly what the cheap rule
leaves on the table.

The algorithm is the classic closure-based one: edge ``(u, v)`` is
redundant iff some other out-neighbour ``w`` of ``u`` reaches ``v``.
With bitset closures this is one AND per edge; total cost is the cost
of the closure itself, O(n·m/64) words.
"""

from __future__ import annotations

from typing import List, Tuple

from .digraph import DiGraph
from .closure import transitive_closure_bits
from .topo import topological_order

__all__ = ["transitive_reduction", "redundant_edges", "is_transitively_reduced"]


def redundant_edges(graph: DiGraph) -> List[Tuple[int, int]]:
    """Edges whose removal preserves reachability.

    An edge ``(u, v)`` is redundant iff another out-neighbour of ``u``
    reaches ``v``.  In a DAG (no parallel edges, no self-loops) removing
    all such edges at once is safe and yields the unique transitive
    reduction.
    """
    order = topological_order(graph)
    if order is None:
        raise ValueError("transitive reduction requires a DAG; condense first")
    tc = transitive_closure_bits(graph, order)
    redundant: List[Tuple[int, int]] = []
    for u in graph.vertices():
        out = graph.out(u)
        if len(out) < 2:
            continue
        for v in out:
            bit = 1 << v
            for w in out:
                if w != v and tc[w] & bit:
                    redundant.append((u, v))
                    break
    return redundant


def transitive_reduction(graph: DiGraph) -> DiGraph:
    """The unique minimal subgraph with the same reachability.

    Examples
    --------
    >>> g = DiGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
    >>> sorted(transitive_reduction(g).edges())
    [(0, 1), (1, 2)]
    """
    drop = set(redundant_edges(graph))
    reduced = DiGraph(graph.n)
    for u, v in graph.edges():
        if (u, v) not in drop:
            reduced.add_edge(u, v)
    return reduced.freeze()


def is_transitively_reduced(graph: DiGraph) -> bool:
    """Whether the DAG contains no redundant edge."""
    return not redundant_edges(graph)
