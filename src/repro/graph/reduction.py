"""Transitive reduction of a DAG.

Definition 1 of the paper notes that backbone edges "can be simplified
as a transitive reduction (the minimal edge set preserving the
reachability)" but that computing it exactly "is as expensive as
transitive closure" — which is why the backbone uses the cheaper
domination rule instead.  We provide the exact algorithm anyway: it is
a useful preprocessing step for small graphs (smaller inputs make every
index smaller) and it lets tests quantify exactly what the cheap rule
leaves on the table.

The algorithm is the classic closure-based one: edge ``(u, v)`` is
redundant iff some other out-neighbour ``w`` of ``u`` reaches ``v``.
With bitset closures this is one AND per edge; total cost is the cost
of the closure itself, O(n·m/64) words.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .digraph import DiGraph
from .closure import transitive_closure_bits
from .topo import topological_order

__all__ = [
    "transitive_reduction",
    "reduced_adjacency",
    "redundant_edges",
    "is_transitively_reduced",
]


def reduced_adjacency(
    graph: DiGraph,
    order: Optional[List[int]] = None,
    tc: Optional[List[int]] = None,
    with_in: bool = True,
) -> Tuple[List[List[int]], Optional[List[List[int]]]]:
    """``(out_adj, in_adj)`` of the transitive reduction, without copying
    the graph container.

    This is the construction-time fast path used by Distribution-Labeling
    on dense inputs: traversing the reduction instead of the full edge set
    visits the same closure with far fewer edge scans.  Per vertex the
    out-neighbours are processed in topological order with an accumulated
    closure bitset, so edge ``(u, v)`` is dropped exactly when an earlier
    (kept or dropped) neighbour already reaches ``v`` — O(deg) bigint ORs
    per vertex instead of the O(deg²) pairwise tests of
    :func:`redundant_edges`.

    Neighbour lists come out sorted by vertex id, matching a frozen
    graph's iteration order.  ``order`` (a topological order) and ``tc``
    (the closure bitsets) can be passed in when the caller already has
    them, which Distribution-Labeling's reduce-predictor does.
    ``with_in=False`` skips building the reverse adjacency (returned as
    ``None``) for callers like :func:`redundant_edges` that only read
    the forward side.
    """
    if order is None:
        order = topological_order(graph)
        if order is None:
            raise ValueError("transitive reduction requires a DAG; condense first")
    if tc is None:
        tc = transitive_closure_bits(graph, order)
    pos = [0] * graph.n
    for i, v in enumerate(order):
        pos[v] = i
    out_red: List[List[int]] = [None] * graph.n  # type: ignore[list-item]
    in_red: Optional[List[List[int]]] = (
        [[] for _ in range(graph.n)] if with_in else None
    )
    pos_key = pos.__getitem__
    for u in graph.vertices():
        nbrs = graph.out(u)
        if len(nbrs) < 2:
            kept = list(nbrs)
        else:
            kept = []
            acc = 0
            for w in sorted(nbrs, key=pos_key):
                if not (acc >> w) & 1:
                    kept.append(w)
                    acc |= tc[w]
            kept.sort()
        out_red[u] = kept
        if in_red is not None:
            for w in kept:
                in_red[w].append(u)
    return out_red, in_red


def redundant_edges(graph: DiGraph) -> List[Tuple[int, int]]:
    """Edges whose removal preserves reachability.

    An edge ``(u, v)`` is redundant iff another out-neighbour of ``u``
    reaches ``v``.  In a DAG (no parallel edges, no self-loops) removing
    all such edges at once is safe and yields the unique transitive
    reduction.
    """
    out_red, _ = reduced_adjacency(graph, with_in=False)
    redundant: List[Tuple[int, int]] = []
    for u in graph.vertices():
        kept = out_red[u]
        if len(kept) == len(graph.out(u)):
            continue
        kept_set = set(kept)
        for v in graph.out(u):
            if v not in kept_set:
                redundant.append((u, v))
    return redundant


def transitive_reduction(graph: DiGraph) -> DiGraph:
    """The unique minimal subgraph with the same reachability.

    Examples
    --------
    >>> g = DiGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
    >>> sorted(transitive_reduction(g).edges())
    [(0, 1), (1, 2)]
    """
    drop = set(redundant_edges(graph))
    reduced = DiGraph(graph.n)
    for u, v in graph.edges():
        if (u, v) not in drop:
            reduced.add_edge(u, v)
    return reduced.freeze()


def is_transitively_reduced(graph: DiGraph) -> bool:
    """Whether the DAG contains no redundant edge."""
    return not redundant_edges(graph)
