"""Synthetic graph generators.

The paper evaluates on 27 real graphs (Table 1) spanning four structural
families.  The raw files are not redistributable and multi-million-vertex
builds are out of reach for pure Python, so the dataset catalog
(:mod:`repro.datasets.catalog`) instantiates a named stand-in for every
dataset from the generators below.  Each generator reproduces the
structural property that drives index behaviour in its family:

* ``sparse_dag`` — m ≈ n, shallow, tree-like.  Matches the metabolic /
  pathway networks (agrocyc, anthra, ecoo, hpycyc, human, kegg, mtbrv,
  vchocyc, amaze, xmark, nasa, reactome): interval/tree compression
  shines here.
* ``citation_dag`` — preferential attachment citing earlier vertices,
  heavy-tailed in-degree, deep.  Matches arxiv, citeseer, citeseerx,
  cit-Patents: transitive closures blow up, which is what kills
  PT/K-Reach/2HOP at scale.
* ``powerlaw_digraph`` — directed scale-free graph *with cycles*;
  condensation yields the bow-tie-like DAGs of web/social graphs
  (web, wiki, lj, email, p2p).
* ``chain_forest_dag`` — very long sparse chains with occasional merges,
  like the uniprot RDF graphs (uniprotenc_*, go_uniprot): enormous but
  almost tree-shaped, the case where online search and oracles scale and
  TC compression dies on index size.
* ``random_dag`` — uniform Erdős–Rényi-style DAG, used by property tests
  and ablations.
* ``layered_dag`` — fixed-width layers, controls depth exactly; used in
  backbone/hierarchy tests.

All generators take an explicit ``seed`` and are deterministic.
"""

from __future__ import annotations

import random
from typing import List

from .digraph import DiGraph

__all__ = [
    "random_dag",
    "sparse_dag",
    "citation_dag",
    "powerlaw_digraph",
    "chain_forest_dag",
    "ontology_dag",
    "layered_dag",
    "path_dag",
    "complete_bipartite_dag",
    "star_dag",
    "novel_acyclic_edges",
]


def _dedup_add(g: DiGraph, u: int, v: int) -> bool:
    if u == v:
        return False
    return g.add_edge(u, v)


def random_dag(n: int, m: int, seed: int = 0) -> DiGraph:
    """Uniform random DAG: ``m`` distinct edges respecting a random order.

    A random permutation fixes a topological order; edges are sampled
    uniformly from pairs (earlier -> later).  If ``m`` exceeds the number
    of available pairs it is clamped.
    """
    rng = random.Random(seed)
    perm = list(range(n))
    rng.shuffle(perm)
    g = DiGraph(n)
    max_m = n * (n - 1) // 2
    m = min(m, max_m)
    attempts = 0
    limit = 40 * m + 100
    while g.m < m and attempts < limit:
        attempts += 1
        i = rng.randrange(n)
        j = rng.randrange(n)
        if i == j:
            continue
        if i > j:
            i, j = j, i
        _dedup_add(g, perm[i], perm[j])
    # Dense fallback: enumerate remaining pairs if rejection sampling stalls.
    if g.m < m:
        pairs = [
            (perm[i], perm[j])
            for i in range(n)
            for j in range(i + 1, n)
            if not g.has_edge(perm[i], perm[j])
        ]
        rng.shuffle(pairs)
        for u, v in pairs:
            if g.m >= m:
                break
            g.add_edge(u, v)
    return g.freeze()


def sparse_dag(n: int, extra_edge_ratio: float = 0.08, seed: int = 0) -> DiGraph:
    """Tree-like sparse DAG with m ≈ n·(1+ratio).

    Built as a random forest (every non-root picks a random earlier parent
    with a bias towards recent vertices, yielding moderate depth) plus a
    small fraction of extra forward edges ("metabolic shortcut" edges).
    """
    rng = random.Random(seed)
    g = DiGraph(n)
    for v in range(1, n):
        # ~2% of vertices start new roots (disconnected components, like
        # the many small pathways in the biological datasets).
        if rng.random() < 0.02:
            continue
        lo = max(0, v - 50) if rng.random() < 0.7 else 0
        parent = rng.randrange(lo, v)
        _dedup_add(g, parent, v)
    extra = int(n * extra_edge_ratio)
    for _ in range(extra):
        v = rng.randrange(1, n)
        u = rng.randrange(0, v)
        _dedup_add(g, u, v)
    return g.freeze()


def citation_dag(n: int, out_per_vertex: float = 4, seed: int = 0, min_cites: int = 1) -> DiGraph:
    """Preferential-attachment citation DAG.

    Vertex ``v`` "cites" ~``out_per_vertex`` earlier vertices on average,
    chosen preferentially by in-degree (rich get richer), giving the
    heavy-tailed in-degree of citation networks.  Edges point from the
    *citing* (newer) vertex to the cited (older) one, so the DAG is deep
    along citation chains.  ``min_cites=0`` allows citation-less vertices
    (sparse bibliographies like citeseer).
    """
    rng = random.Random(seed)
    g = DiGraph(n)
    # The target pool holds one entry per vertex plus one per received
    # citation: sampling from it is preferential attachment.
    pool: List[int] = [0] if n > 0 else []
    for v in range(1, n):
        cites = min(v, max(min_cites, int(rng.gauss(out_per_vertex, out_per_vertex / 2 + 0.5))))
        chosen = set()
        for _ in range(cites * 3):
            if len(chosen) >= cites:
                break
            u = pool[rng.randrange(len(pool))] if rng.random() < 0.8 else rng.randrange(v)
            if u != v:
                chosen.add(u)
        for u in chosen:
            if _dedup_add(g, v, u):
                pool.append(u)
        pool.append(v)
    return g.freeze()


def powerlaw_digraph(n: int, m: int, seed: int = 0) -> DiGraph:
    """Directed scale-free graph, cycles allowed.

    Both endpoints are sampled preferentially (by total degree), so hubs
    emerge and mutual links create sizable SCCs — condensation produces
    the bow-tie DAGs typical of web/social graphs.  Self-loops are
    skipped (``DiGraph`` rejects them).
    """
    rng = random.Random(seed)
    g = DiGraph(n)
    pool: List[int] = list(range(min(n, 8)))
    attempts = 0
    while g.m < m and attempts < 30 * m + 100:
        attempts += 1
        u = pool[rng.randrange(len(pool))] if rng.random() < 0.7 else rng.randrange(n)
        v = pool[rng.randrange(len(pool))] if rng.random() < 0.7 else rng.randrange(n)
        if u == v:
            continue
        if _dedup_add(g, u, v):
            pool.append(u)
            pool.append(v)
    return g.freeze()


def chain_forest_dag(n: int, chain_len: int = 200, merge_ratio: float = 0.02, seed: int = 0) -> DiGraph:
    """Long chains with sparse cross-merges (uniprot-like).

    Vertices are grouped into chains of ~``chain_len``; consecutive chain
    members are linked, and a small fraction of vertices additionally link
    into a random earlier chain, creating the occasional merge points of
    RDF/provenance graphs.
    """
    rng = random.Random(seed)
    g = DiGraph(n)
    chain_start = 0
    starts = []
    while chain_start < n:
        starts.append(chain_start)
        length = max(2, int(rng.gauss(chain_len, chain_len / 4)))
        end = min(n, chain_start + length)
        for v in range(chain_start + 1, end):
            g.add_edge(v - 1, v)
        chain_start = end
    merges = int(n * merge_ratio)
    for _ in range(merges):
        v = rng.randrange(1, n)
        u = rng.randrange(0, v)
        _dedup_add(g, u, v)
    return g.freeze()


def ontology_dag(n: int, extra_parent_ratio: float = 0.15, roots: int = 1, seed: int = 0) -> DiGraph:
    """Ontology / taxonomy-style DAG (go_uniprot, uniprotenc stand-in).

    Edges point **child -> parent** (is-a direction), so each vertex's
    closure is its small ancestor set — the structural reason the uniprot
    family compresses so well in the paper despite its enormous size.
    ``extra_parent_ratio`` adds multi-parent edges (GO terms commonly
    have several parents); ``extra_parent_ratio=0`` yields a pure forest
    like the uniprotenc graphs (where |E| = |V| - c).
    """
    rng = random.Random(seed)
    g = DiGraph(n)
    roots = max(1, min(roots, n))
    for v in range(roots, n):
        # Prefer recent vertices as parents: deepens the taxonomy.
        lo = max(0, v - 200) if rng.random() < 0.6 else 0
        parent = rng.randrange(lo, v)
        _dedup_add(g, v, parent)
    extra = int(n * extra_parent_ratio)
    for _ in range(extra):
        v = rng.randrange(roots, n)
        parent = rng.randrange(0, v)
        _dedup_add(g, v, parent)
    return g.freeze()


def layered_dag(layers: int, width: int, edges_per_vertex: int = 2, seed: int = 0) -> DiGraph:
    """DAG of ``layers`` layers of ``width`` vertices.

    Every vertex links to ``edges_per_vertex`` random vertices of the next
    layer, so depth is exactly ``layers - 1``.  Useful for exercising the
    hierarchical decomposition with a controlled diameter.
    """
    rng = random.Random(seed)
    n = layers * width
    g = DiGraph(n)
    for layer in range(layers - 1):
        base = layer * width
        nxt = base + width
        for i in range(width):
            u = base + i
            for _ in range(edges_per_vertex):
                _dedup_add(g, u, nxt + rng.randrange(width))
    return g.freeze()


def path_dag(n: int) -> DiGraph:
    """A single directed path ``0 -> 1 -> ... -> n-1``."""
    g = DiGraph(n)
    for v in range(1, n):
        g.add_edge(v - 1, v)
    return g.freeze()


def complete_bipartite_dag(a: int, b: int) -> DiGraph:
    """All edges from the first ``a`` vertices to the next ``b``.

    The classic worst case for transitive-closure size relative to edges,
    and the classic best case for a single-hop 2-hop labeling.
    """
    g = DiGraph(a + b)
    for u in range(a):
        for v in range(a, a + b):
            g.add_edge(u, v)
    return g.freeze()


def star_dag(n: int, out: bool = True) -> DiGraph:
    """Star: vertex 0 points at everyone (``out=True``) or vice versa."""
    g = DiGraph(n)
    for v in range(1, n):
        if out:
            g.add_edge(0, v)
        else:
            g.add_edge(v, 0)
    return g.freeze()


def novel_acyclic_edges(graph, count, seed=0, require_new_reachability=True,
                        strict=True):
    """Sample ``count`` insertable edges that keep ``graph`` acyclic.

    The update-stream generator shared by the live-serving bench, the
    CI hot-swap smoke and the live test suites: rejection-samples
    ``(u, v)`` pairs that are not self-loops, not existing edges, and
    do not close a cycle; with ``require_new_reachability`` (default)
    each edge also connects a previously *unreachable* pair, so every
    insertion is guaranteed to change the reachability relation (an
    already-reachable edge is a label no-op the live index will not
    even publish).  Returns ``(edges, extended)`` where ``extended`` is
    a copy of ``graph`` with the stream applied — the "v2" shadow the
    callers verify served answers against.

    With ``strict`` (default) a graph too dense or too transitively
    closed to yield ``count`` such edges raises instead of silently
    returning a shorter stream — an update benchmark or acceptance
    smoke that quietly exercised 3 of its 50 requested updates would
    report coverage it never had.  ``strict=False`` returns whatever
    was found.
    """
    import random as _random

    from .traversal import bfs_reaches

    rng = _random.Random(seed)
    shadow = graph.copy()
    edges = []
    tries = 0
    while len(edges) < count and tries < max(100, count * 100):
        tries += 1
        u, v = rng.randrange(graph.n), rng.randrange(graph.n)
        if u == v or shadow.has_edge(u, v):
            continue
        if bfs_reaches(shadow.out_adj, v, u):
            continue  # would close a cycle
        if require_new_reachability and bfs_reaches(shadow.out_adj, u, v):
            continue  # a label no-op; callers want real updates
        shadow.add_edge(u, v)
        edges.append((u, v))
    if strict and len(edges) < count:
        raise ValueError(
            f"could only sample {len(edges)} of {count} insertable edges "
            f"from this graph (n={graph.n}, m={graph.m}); it is too dense "
            "or too transitively closed — ask for fewer or pass "
            "strict=False"
        )
    return edges, shadow
