"""Structural graph metrics used by the catalog, docs and reports.

These quantify the properties that drive index behaviour, per family
(see :mod:`repro.datasets.catalog`): density, depth, degree skew and —
the decisive one for TC-compression methods — reachability density
(expected closure size).  Exact closure statistics are computed with
the bitset closure on small graphs and estimated by sampling sources on
larger ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from .closure import transitive_closure_bits
from .digraph import DiGraph
from .topo import longest_path_length, topological_order
from .traversal import bfs_reachable

__all__ = ["GraphMetrics", "compute_metrics", "reachability_density"]


@dataclass
class GraphMetrics:
    """A bundle of structural statistics for one DAG."""

    n: int
    m: int
    density: float          # m / n
    sources: int
    sinks: int
    isolated: int
    max_out_degree: int
    max_in_degree: int
    depth: int              # longest path, in edges
    avg_closure: float      # mean |TC(v)| including v (maybe estimated)
    closure_exact: bool

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for rendering and JSON."""
        return {
            "n": self.n,
            "m": self.m,
            "density": round(self.density, 3),
            "sources": self.sources,
            "sinks": self.sinks,
            "isolated": self.isolated,
            "max_out_degree": self.max_out_degree,
            "max_in_degree": self.max_in_degree,
            "depth": self.depth,
            "avg_closure": round(self.avg_closure, 2),
            "closure_exact": self.closure_exact,
        }


def reachability_density(
    graph: DiGraph, exact_threshold: int = 4000, samples: int = 300, seed: int = 0
) -> tuple:
    """Mean closure cardinality, ``(value, exact?)``.

    Exact (bitset sweep) up to ``exact_threshold`` vertices, otherwise
    estimated from ``samples`` uniformly sampled source vertices.
    """
    n = graph.n
    if n == 0:
        return 0.0, True
    if n <= exact_threshold:
        tc = transitive_closure_bits(graph)
        return sum(b.bit_count() for b in tc) / n, True
    rng = random.Random(seed)
    total = 0
    for _ in range(samples):
        v = rng.randrange(n)
        total += len(bfs_reachable(graph.out_adj, v))
    return total / samples, False


def compute_metrics(graph: DiGraph, seed: int = 0) -> GraphMetrics:
    """Compute :class:`GraphMetrics` for a DAG.

    Raises
    ------
    ValueError
        If the graph has a cycle (condense first).
    """
    if topological_order(graph) is None:
        raise ValueError("metrics require a DAG; condense first")
    n = graph.n
    isolated = sum(
        1 for v in graph.vertices() if not graph.out(v) and not graph.inn(v)
    )
    avg_closure, exact = reachability_density(graph, seed=seed)
    return GraphMetrics(
        n=n,
        m=graph.m,
        density=graph.m / n if n else 0.0,
        sources=len(graph.sources()),
        sinks=len(graph.sinks()),
        isolated=isolated,
        max_out_degree=max((graph.out_degree(v) for v in graph.vertices()), default=0),
        max_in_degree=max((graph.in_degree(v) for v in graph.vertices()), default=0),
        depth=longest_path_length(graph),
        avg_closure=avg_closure,
        closure_exact=exact,
    )
