"""Edge-list I/O.

The reachability literature (and the datasets of Table 1) uses a trivial
text format: an optional header line ``n m`` followed by one ``u v`` pair
per line.  We read and write that format, plus a variant with ``#``
comments, so users can feed their own graphs to the oracles.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Tuple, Union

from .digraph import DiGraph

__all__ = ["read_edge_list", "write_edge_list", "parse_edge_list"]

PathLike = Union[str, Path]


def parse_edge_list(text: str) -> DiGraph:
    """Parse an edge list from a string.

    Accepts an optional first non-comment line ``n m``.  The first line
    is treated as a header only when it is consistent with one: its
    second value equals the number of following edge lines *and* its
    first value is at least ``max vertex id + 1`` of those edges.
    Otherwise the line is the first edge.  Vertices may be any
    non-negative ints; the vertex count is ``max id + 1`` unless a header
    gives a larger ``n``.  Lines starting with ``#`` or ``%`` are ignored.
    """
    header_n = None
    lines = [
        ln.strip()
        for ln in text.splitlines()
        if ln.strip() and not ln.lstrip().startswith(("#", "%"))
    ]

    def parse_edges(edge_lines):
        parsed: List[Tuple[int, int]] = []
        for ln in edge_lines:
            parts = ln.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {ln!r}")
            u, v = int(parts[0]), int(parts[1])
            if u < 0 or v < 0:
                raise ValueError(f"negative vertex id in line: {ln!r}")
            parsed.append((u, v))
        return parsed

    edges: List[Tuple[int, int]] = []
    if lines:
        first = lines[0].split()
        if len(first) == 2 and int(first[1]) == len(lines) - 1:
            a = int(first[0])
            candidate = parse_edges(lines[1:])
            max_id = max((max(u, v) for u, v in candidate), default=-1)
            if a >= max_id + 1:
                header_n = a
                edges = candidate
    if header_n is None:
        edges = parse_edges(lines)
    max_id = max((max(u, v) for u, v in edges), default=-1)
    n = max(header_n or 0, max_id + 1)
    g = DiGraph(n)
    for u, v in edges:
        if u != v:  # drop self-loops on ingest; they never affect DAG reachability
            g.add_edge(u, v)
    return g.freeze()


def read_edge_list(path: PathLike) -> DiGraph:
    """Read a graph from an edge-list file (see :func:`parse_edge_list`)."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_edge_list(f.read())


def write_edge_list(graph: DiGraph, path: PathLike, header: bool = True) -> None:
    """Write a graph as an edge list, optionally with an ``n m`` header."""
    buf = io.StringIO()
    if header:
        buf.write(f"{graph.n} {graph.m}\n")
    for u, v in graph.edges():
        buf.write(f"{u} {v}\n")
    with open(path, "w", encoding="utf-8") as f:
        f.write(buf.getvalue())
