"""Graphviz DOT export for small graphs.

A debugging/teaching utility: render a DAG, optionally highlighting the
backbone hierarchy levels of Hierarchical-Labeling, so the Figure-1
structure of the paper can be visualised for any input.
"""

from __future__ import annotations

import io
from typing import Mapping, Optional, Sequence

from .digraph import DiGraph

__all__ = ["to_dot"]

_LEVEL_COLORS = [
    "#dddddd", "#b3cde3", "#8c96c6", "#8856a7", "#810f7c", "#4d004b",
]


def to_dot(
    graph: DiGraph,
    name: str = "G",
    vertex_labels: Optional[Mapping[int, str]] = None,
    levels: Optional[Sequence[int]] = None,
    highlight_edges: Optional[Sequence] = None,
) -> str:
    """Render a DAG in Graphviz DOT format.

    Parameters
    ----------
    graph:
        The graph to render.
    name:
        DOT graph name.
    vertex_labels:
        Optional display labels (defaults to vertex ids).
    levels:
        Optional per-vertex hierarchy level (e.g. from a
        Hierarchical-Labeling decomposition); vertices are filled with a
        darker colour per level, the Figure-1 look.
    highlight_edges:
        Edges to draw bold/red (e.g. backbone edges).

    Examples
    --------
    >>> g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
    >>> "0 -> 1" in to_dot(g)
    True
    """
    highlight = set(map(tuple, highlight_edges or []))
    buf = io.StringIO()
    buf.write(f"digraph {name} {{\n")
    buf.write("  rankdir=TB;\n  node [shape=circle, fontsize=10];\n")
    for v in graph.vertices():
        label = str(vertex_labels.get(v, v)) if vertex_labels else str(v)
        attrs = [f'label="{label}"']
        if levels is not None:
            color = _LEVEL_COLORS[min(levels[v], len(_LEVEL_COLORS) - 1)]
            attrs.append(f'style=filled, fillcolor="{color}"')
            if levels[v] >= 2:
                attrs.append('fontcolor="white"')
        buf.write(f"  {v} [{', '.join(attrs)}];\n")
    for u, v in graph.edges():
        if (u, v) in highlight:
            buf.write(f"  {u} -> {v} [color=red, penwidth=2];\n")
        else:
            buf.write(f"  {u} -> {v};\n")
    buf.write("}\n")
    return buf.getvalue()
