"""Topological utilities for DAGs.

Topological order is the backbone coordinate system for several baselines:
Nuutila's INT numbers transitive closures in topological coordinates,
GRAIL uses topological levels as a cheap negative filter, and the
Distribution-Labeling traversals exploit DAG-ness implicitly (monotone
BFS frontiers).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from .digraph import DiGraph

__all__ = ["topological_order", "is_dag", "topological_levels", "longest_path_length"]


def topological_order(graph: DiGraph) -> Optional[List[int]]:
    """Kahn's algorithm.

    Returns a list of vertices in topological order, or ``None`` if the
    graph contains a cycle.  Deterministic for frozen graphs: ties are
    broken by vertex id because the ready-queue is FIFO seeded in id
    order and adjacency lists are sorted.
    """
    n = graph.n
    indeg = [graph.in_degree(v) for v in range(n)]
    queue = deque(v for v in range(n) if indeg[v] == 0)
    order: List[int] = []
    while queue:
        u = queue.popleft()
        order.append(u)
        for w in graph.out(u):
            indeg[w] -= 1
            if indeg[w] == 0:
                queue.append(w)
    if len(order) != n:
        return None
    return order


def is_dag(graph: DiGraph) -> bool:
    """Whether ``graph`` is acyclic."""
    return topological_order(graph) is not None


def topological_levels(graph: DiGraph) -> List[int]:
    """Longest-path-from-any-source level of every vertex.

    ``level[v] = 0`` for sources; otherwise ``1 + max(level[u])`` over
    in-neighbours ``u``.  If ``u`` reaches ``v`` (``u != v``) then
    ``level[u] < level[v]``, so ``level[u] >= level[v]`` is a constant-time
    certificate of non-reachability (used by GRAIL as a negative filter).

    Raises
    ------
    ValueError
        If the graph has a cycle.
    """
    order = topological_order(graph)
    if order is None:
        raise ValueError("topological_levels requires a DAG")
    level = [0] * graph.n
    for u in order:
        lu = level[u]
        for w in graph.out(u):
            if lu + 1 > level[w]:
                level[w] = lu + 1
    return level


def longest_path_length(graph: DiGraph) -> int:
    """Length (in edges) of the longest path in the DAG."""
    if graph.n == 0:
        return 0
    return max(topological_levels(graph))
