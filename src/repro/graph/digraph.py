"""Directed-graph container used throughout the library.

The container is deliberately simple: vertices are the integers
``0 .. n-1`` and edges live in per-vertex adjacency lists.  Every
reachability index in this package consumes a :class:`DiGraph` (usually a
DAG produced by :func:`repro.graph.scc.condense`).

Design notes
------------
* Adjacency lists are plain Python lists of ints.  This is the fastest
  portable representation for the pure-Python BFS/DFS inner loops that
  dominate index construction.
* Both forward (``out_adj``) and reverse (``in_adj``) adjacency are kept,
  because every labeling algorithm in the paper performs traversals in
  both directions.
* The class is mutable while building and is typically "frozen" by sorting
  adjacency lists (:meth:`DiGraph.freeze`), which gives deterministic
  iteration order for reproducible experiments.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

Edge = Tuple[int, int]

__all__ = ["DiGraph", "Edge"]


class DiGraph:
    """A directed graph over vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.  Vertices are implicit; there is no notion of
        vertex insertion or deletion (matching the static-index setting of
        the paper).

    Examples
    --------
    >>> g = DiGraph(3)
    >>> g.add_edge(0, 1)
    True
    >>> g.add_edge(1, 2)
    True
    >>> sorted(g.edges())
    [(0, 1), (1, 2)]
    >>> g.out_degree(0), g.in_degree(2)
    (1, 1)
    """

    __slots__ = ("_n", "_m", "_out", "_in", "_edge_set", "_frozen", "_csr")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self._n = n
        self._m = 0
        self._out: List[List[int]] = [[] for _ in range(n)]
        self._in: List[List[int]] = [[] for _ in range(n)]
        self._edge_set = set()
        self._frozen = False
        self._csr = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Edge]) -> "DiGraph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Duplicate edges are silently ignored; self-loops are rejected with
        ``ValueError`` (a DAG index never needs them — condense the graph
        first if the input has cycles or self-loops).
        """
        g = cls(n)
        for u, v in edges:
            g.add_edge(u, v)
        g.freeze()
        return g

    def add_edge(self, u: int, v: int) -> bool:
        """Add edge ``u -> v``.  Returns ``True`` if the edge was new."""
        if self._frozen:
            raise RuntimeError("graph is frozen; copy() it to modify")
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop {u}->{v} not allowed; condense cyclic input first")
        if (u, v) in self._edge_set:
            return False
        self._edge_set.add((u, v))
        self._out[u].append(v)
        self._in[v].append(u)
        self._m += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove edge ``u -> v``.  Returns ``True`` if the edge existed."""
        if self._frozen:
            raise RuntimeError("graph is frozen; copy() it to modify")
        self._check_vertex(u)
        self._check_vertex(v)
        if (u, v) not in self._edge_set:
            return False
        self._edge_set.discard((u, v))
        self._out[u].remove(v)
        self._in[v].remove(u)
        self._m -= 1
        return True

    def freeze(self) -> "DiGraph":
        """Sort adjacency lists and mark the graph immutable.

        Freezing makes traversal order deterministic, which in turn makes
        every index build and every experiment in this repository
        reproducible bit-for-bit.
        """
        if not self._frozen:
            for adj in self._out:
                adj.sort()
            for adj in self._in:
                adj.sort()
            self._frozen = True
        return self

    def csr(self):
        """Cached flat-array (CSR) view of the adjacency.

        The view is built lazily on first request and cached; it is only
        available on a frozen graph, because freezing fixes the neighbour
        order the flat arrays snapshot.  See
        :class:`repro.graph.csr.CSRView` for the layout.
        """
        if not self._frozen:
            raise RuntimeError("csr() requires a frozen graph; call freeze() first")
        if self._csr is None:
            from .csr import CSRView

            self._csr = CSRView(self._out, self._in, graph=self)
        return self._csr

    def copy(self) -> "DiGraph":
        """Return a mutable deep copy."""
        g = DiGraph(self._n)
        g._m = self._m
        g._out = [list(a) for a in self._out]
        g._in = [list(a) for a in self._in]
        g._edge_set = set(self._edge_set)
        return g

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has been called."""
        return self._frozen

    def vertices(self) -> range:
        """Iterate all vertex ids."""
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        """Yield all edges as ``(u, v)`` pairs."""
        for u in range(self._n):
            for v in self._out[u]:
                yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``u -> v`` exists."""
        return (u, v) in self._edge_set

    def out(self, u: int) -> Sequence[int]:
        """Out-neighbours of ``u`` (do not mutate)."""
        return self._out[u]

    def inn(self, u: int) -> Sequence[int]:
        """In-neighbours of ``u`` (do not mutate)."""
        return self._in[u]

    @property
    def out_adj(self) -> List[List[int]]:
        """The full forward adjacency structure (treat as read-only)."""
        return self._out

    @property
    def in_adj(self) -> List[List[int]]:
        """The full reverse adjacency structure (treat as read-only)."""
        return self._in

    def out_degree(self, u: int) -> int:
        """Number of out-neighbours of ``u``."""
        return len(self._out[u])

    def in_degree(self, u: int) -> int:
        """Number of in-neighbours of ``u``."""
        return len(self._in[u])

    def sources(self) -> List[int]:
        """Vertices with no incoming edges."""
        return [u for u in range(self._n) if not self._in[u]]

    def sinks(self) -> List[int]:
        """Vertices with no outgoing edges."""
        return [u for u in range(self._n) if not self._out[u]]

    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        g = DiGraph(self._n)
        g._m = self._m
        g._out = [list(a) for a in self._in]
        g._in = [list(a) for a in self._out]
        g._edge_set = {(v, u) for (u, v) in self._edge_set}
        if self._frozen:
            g._frozen = True
        return g

    def induced_subgraph(self, keep: Sequence[int]) -> Tuple["DiGraph", List[int]]:
        """Subgraph induced by ``keep``.

        Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the
        original id of subgraph vertex ``i``.  Edges between kept vertices
        are preserved.
        """
        keep_sorted = sorted(set(keep))
        index = {v: i for i, v in enumerate(keep_sorted)}
        sub = DiGraph(len(keep_sorted))
        for v in keep_sorted:
            vi = index[v]
            for w in self._out[v]:
                wi = index.get(w)
                if wi is not None:
                    sub.add_edge(vi, wi)
        sub.freeze()
        return sub, keep_sorted

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._edge_set

    def __repr__(self) -> str:
        state = "frozen" if self._frozen else "mutable"
        return f"DiGraph(n={self._n}, m={self._m}, {state})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return self._n == other._n and self._edge_set == other._edge_set

    def __hash__(self):  # pragma: no cover - graphs are not hashable
        raise TypeError("DiGraph is unhashable")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < self._n:
            raise IndexError(f"vertex {u} out of range [0, {self._n})")
