"""Graph substrate: containers, condensation, traversal, closure, generators."""

from .digraph import DiGraph
from .scc import Condensation, condense, strongly_connected_components
from .topo import is_dag, longest_path_length, topological_levels, topological_order
from .traversal import bfs_reachable, bfs_reaches, bfs_within
from .closure import (
    closure_pairs_count,
    reverse_transitive_closure_bits,
    transitive_closure_bits,
)
from .io import parse_edge_list, read_edge_list, write_edge_list

__all__ = [
    "DiGraph",
    "Condensation",
    "condense",
    "strongly_connected_components",
    "is_dag",
    "longest_path_length",
    "topological_levels",
    "topological_order",
    "bfs_reachable",
    "bfs_reaches",
    "bfs_within",
    "closure_pairs_count",
    "reverse_transitive_closure_bits",
    "transitive_closure_bits",
    "parse_edge_list",
    "read_edge_list",
    "write_edge_list",
]
