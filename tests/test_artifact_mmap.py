"""mmap-sharing tests: N serving processes over one artifact.

The point of the binary format is that serving processes do not each
pay for a private copy of the arrays: loading memory-maps the file, so
the big sections live once in the page cache.  These tests check both
halves — the loaded arrays really are views over the mapping (no
copy-in on load), and independent processes loading the same artifact
answer identically.
"""

import mmap as _mmap
import multiprocessing as mp
import random

import pytest

from repro.core.distribution import DistributionLabeling
from repro.facade import Reachability
from repro.graph.generators import citation_dag, powerlaw_digraph
from repro.kernels import have_numpy
from repro.serialization import load_artifact, save_artifact

N_PROCS = 4


def _backing_buffer(arr):
    """The ultimate buffer object behind an array view."""
    if isinstance(arr, memoryview):
        return arr.obj
    base = arr
    while getattr(base, "base", None) is not None:
        base = base.base
    return getattr(base, "obj", base)


def _workload(n, count, seed):
    rng = random.Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


def _serve_method(args):
    path, n, count, seed = args
    oracle = load_artifact(path)
    answers = oracle.query_batch(_workload(n, count, seed))
    labels = oracle.labels
    mapped = isinstance(_backing_buffer(labels._out_hops), _mmap.mmap)
    return answers, mapped


def _serve_pipeline(args):
    path, n, count, seed = args
    served = Reachability.load(path)
    return served.query_batch(_workload(n, count, seed))


class TestNoCopyOnLoad:
    def test_label_arena_is_mmap_backed(self, tmp_path):
        g = citation_dag(900, out_per_vertex=3, seed=61)
        idx = DistributionLabeling(g)
        path = str(tmp_path / "dl.rpro")
        save_artifact(idx, path)
        oracle = load_artifact(path)
        labels = oracle.labels
        # No canonical per-vertex lists were materialised on load...
        assert labels._lout is None and labels._lin is None
        assert labels.sealed
        # ...and every arena array is a view over the shared mapping.
        for arr in (labels._out_hops, labels._out_offs,
                    labels._in_hops, labels._in_offs):
            assert isinstance(_backing_buffer(arr), _mmap.mmap)

    @pytest.mark.skipif(not have_numpy(), reason="engine requires numpy")
    def test_engine_adopts_mmap_arrays_without_copy(self, tmp_path):
        import numpy as np

        g = citation_dag(1200, out_per_vertex=3, seed=63)
        idx = DistributionLabeling(g)
        path = str(tmp_path / "dl.rpro")
        save_artifact(idx, path)
        oracle = load_artifact(path)
        # First sealed batch builds the engine snapshot lazily...
        oracle.query_batch(_workload(g.n, 5000, seed=65))
        engine = oracle._batch_engine
        labels = oracle.labels
        # ...whose hop arenas and int64 offsets are the mmap arrays
        # themselves, not copies.
        assert engine.OH is labels._out_hops
        assert engine.IH is labels._in_hops
        assert engine.OO.base is not None or engine.OO is labels._out_offs
        assert isinstance(_backing_buffer(engine.OH), _mmap.mmap)
        assert np.shares_memory(engine.OO, labels._out_offs)
        assert np.shares_memory(engine.IO, labels._in_offs)


class TestMultiProcessServing:
    def test_four_processes_identical_answers(self, tmp_path):
        g = citation_dag(1000, out_per_vertex=3, seed=67)
        idx = DistributionLabeling(g)
        path = str(tmp_path / "dl.rpro")
        save_artifact(idx, path)
        expected = [idx.query(u, v) for u, v in _workload(g.n, 5000, seed=69)]

        ctx = mp.get_context("spawn")  # fresh interpreters, nothing inherited
        jobs = [(path, g.n, 5000, 69)] * N_PROCS
        with ctx.Pool(N_PROCS) as pool:
            results = pool.map(_serve_method, jobs)
        for answers, mapped in results:
            assert answers == expected
            assert mapped, "child process served from a copy, not the mmap"

    def test_four_processes_pipeline_artifact(self, tmp_path):
        g = powerlaw_digraph(700, 2100, seed=71)  # cyclic: SCCs exercised
        r = Reachability(g, "DL")
        path = str(tmp_path / "pipe.rpro")
        r.save(path)
        expected = r.query_batch(_workload(g.n, 3000, seed=73))

        ctx = mp.get_context("spawn")
        jobs = [(path, g.n, 3000, 73)] * N_PROCS
        with ctx.Pool(N_PROCS) as pool:
            results = pool.map(_serve_pipeline, jobs)
        for answers in results:
            assert answers == expected
