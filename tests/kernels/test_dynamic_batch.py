"""Batched update kernels vs the sequential scalar path.

The contract under test (:mod:`repro.kernels.dynamic`): replaying an
acyclic insert stream through ``DynamicDL.insert_edges`` produces
labels **bit-identical** to ``insert_edge`` in stream order, on both
backends; a cyclic stream is rejected stream-atomically (nothing
applied, index intact); and mixed insert/remove churn keeps every
query equal to BFS over the live graph, through compacts included.
"""

import random

import pytest

from repro.core.dynamic import DynamicDL
from repro.graph.generators import random_dag
from repro.graph.traversal import bfs_reaches
from repro.kernels import numpy_or_none
from repro.kernels.dynamic import CycleInBatch

BACKENDS = ["python"] + (["numpy"] if numpy_or_none() is not None else [])

SEEDS = range(50)


def _labels_of(dyn):
    return (
        [list(lab) for lab in dyn.labels.lout],
        [list(lab) for lab in dyn.labels.lin],
        list(dyn.rank),
    )


def _make_stream(rng, shadow, size):
    """An acyclic candidate stream: novel, redundant and duplicate edges."""
    n = shadow.n
    stream = []
    for _ in range(size):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v or bfs_reaches(shadow.out_adj, v, u):
            continue
        shadow.add_edge(u, v)
        stream.append((u, v))
        if stream and rng.random() < 0.25:
            stream.append(rng.choice(stream))  # in-batch duplicate
    return stream


# ----------------------------------------------------------------------
# Bit-identical parity with the sequential reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_batched_insert_matches_sequential(backend):
    for seed in SEEDS:
        rng = random.Random(seed)
        n = rng.randrange(4, 28)
        g = random_dag(n, rng.randrange(0, 3 * n), seed=seed)
        stream = _make_stream(rng, g.copy(), rng.randrange(1, 24))

        seq = DynamicDL(g, auto_rebuild_factor=0)
        for u, v in stream:
            seq.insert_edge(u, v)

        bat = DynamicDL(g, auto_rebuild_factor=0)
        summary = bat.insert_edges(stream, backend=backend)

        if stream:  # an empty batch returns before backend resolution
            assert summary["backend"] == backend
        assert summary["edges"] == len(stream)
        assert _labels_of(bat) == _labels_of(seq), f"seed {seed}"
        pairs = [(u, v) for u in range(n) for v in range(n)]
        assert bat.query_batch(pairs) == seq.query_batch(pairs), f"seed {seed}"
        assert bat.m == seq.m


@pytest.mark.parametrize("backend", BACKENDS)
def test_backends_agree_and_split_batches_converge(backend):
    """One big batch == the same stream split into arbitrary sub-batches."""
    for seed in range(20):
        rng = random.Random(1000 + seed)
        n = rng.randrange(6, 24)
        g = random_dag(n, n, seed=seed)
        stream = _make_stream(rng, g.copy(), 18)

        whole = DynamicDL(g, auto_rebuild_factor=0)
        whole.insert_edges(stream, backend=backend)

        split = DynamicDL(g, auto_rebuild_factor=0)
        i = 0
        while i < len(stream):
            step = rng.randrange(1, 5)
            split.insert_edges(stream[i : i + step], backend=backend)
            i += step

        assert _labels_of(whole) == _labels_of(split), f"seed {seed}"


@pytest.mark.parametrize("backend", BACKENDS)
def test_cyclic_stream_is_rejected_atomically(backend):
    for seed in range(25):
        rng = random.Random(2000 + seed)
        n = rng.randrange(4, 20)
        g = random_dag(n, 2 * n, seed=seed)
        shadow = g.copy()
        stream = _make_stream(rng, shadow, 8)
        # Find an edge that closes a cycle in the final graph and bury
        # it at a random position of the stream.
        closing = None
        for u in range(n):
            for v in range(n):
                if u != v and bfs_reaches(shadow.out_adj, v, u):
                    closing = (u, v)
                    break
            if closing:
                break
        if closing is None:
            continue
        stream.insert(rng.randrange(len(stream) + 1), closing)

        dyn = DynamicDL(g, auto_rebuild_factor=0)
        before = _labels_of(dyn)
        m_before = dyn.m
        with pytest.raises(CycleInBatch) as exc:
            dyn.insert_edges(stream, backend=backend)
        assert stream[exc.value.index] == exc.value.edge
        # Stream-atomic: nothing of the batch was applied.
        assert _labels_of(dyn) == before
        assert dyn.m == m_before


# ----------------------------------------------------------------------
# Mixed insert/remove churn vs BFS ground truth
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_churn_matches_bfs(backend):
    for seed in range(30):
        rng = random.Random(3000 + seed)
        n = rng.randrange(5, 22)
        g = random_dag(n, 2 * n, seed=seed)
        dyn = DynamicDL(g, auto_rebuild_factor=0)
        live = {(u, v) for u in range(n) for v in g.out_adj[u]}

        for _ in range(30):
            roll = rng.random()
            if roll < 0.45 and live:
                u, v = rng.choice(sorted(live))
                dyn.remove_edge(u, v)
                live.discard((u, v))
            elif roll < 0.55 and rng.random() < 0.5 and dyn.tombstones:
                dyn.compact()
            else:
                u, v = rng.randrange(n), rng.randrange(n)
                adj = [
                    [x for x in row if (w, x) in live]
                    for w, row in enumerate(dyn.graph.out_adj)
                ]
                if u == v or bfs_reaches(adj, v, u):
                    continue
                if rng.random() < 0.5:
                    dyn.insert_edge(u, v)
                else:
                    dyn.insert_edges([(u, v)], backend=backend)
                live.add((u, v))

            adj = [
                [x for x in row if (w, x) in live]
                for w, row in enumerate(dyn.graph.out_adj)
            ]
            for _ in range(15):
                a, b = rng.randrange(n), rng.randrange(n)
                assert dyn.query(a, b) == (
                    a == b or bfs_reaches(adj, a, b)
                ), f"seed {seed}: {a}->{b}"

        assert dyn.live_m == len(live)


def test_remove_then_batch_insert_resurrects():
    g = random_dag(6, 0, seed=0)
    dyn = DynamicDL(g, auto_rebuild_factor=0)
    dyn.insert_edges([(0, 1), (1, 2), (2, 3)])
    assert dyn.query(0, 3) is True
    dyn.remove_edge(1, 2)
    assert dyn.query(0, 3) is False
    summary = dyn.insert_edges([(1, 2), (3, 4)])
    assert summary["resurrected"] == 1
    assert summary["novel"] == 1
    assert dyn.query(0, 4) is True
    assert dyn.tombstones == []
