"""Sharded (multi-core) DL construction: bit-identical to serial."""

from __future__ import annotations

import random

import pytest

from repro.core.distribution import DistributionLabeling, distribution_labels
from repro.core.labels import LabelSet
from repro.core.order import get_order
from repro.graph.generators import citation_dag, random_dag, sparse_dag
from repro.kernels.sharded import _clean_side, distribute_labels_sharded


def _serial(graph):
    order = get_order("degree_product")(graph, 0)
    labels, _ = distribution_labels(graph, order, workers=1)
    return order, labels


class TestBitIdentical:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("workers", [2, 3])
    def test_random_dags(self, seed, workers):
        rng = random.Random(seed)
        n = rng.randrange(15, 80)
        graph = random_dag(n, rng.randrange(n, 4 * n), seed=seed)
        order, serial = _serial(graph)
        sharded, _ = distribution_labels(graph, order, workers=workers)
        assert sharded.lout == serial.lout
        assert sharded.lin == serial.lin

    @pytest.mark.parametrize(
        "graph",
        [
            citation_dag(90, out_per_vertex=3, seed=1),
            sparse_dag(80, 0.02, seed=2),
            random_dag(60, 400, seed=3),  # dense: reduce-traversal path
        ],
        ids=["citation", "sparse", "dense"],
    )
    def test_structured_families(self, graph):
        order, serial = _serial(graph)
        sharded, _ = distribution_labels(graph, order, workers=2)
        assert sharded.lout == serial.lout
        assert sharded.lin == serial.lin

    def test_small_batches_force_many_sync_rounds(self):
        graph = random_dag(50, 160, seed=9)
        order, serial = _serial(graph)
        labels = LabelSet(graph.n)
        distribute_labels_sharded(
            labels, order, graph.out_adj, graph.in_adj, workers=2, batch_size=5
        )
        assert labels.lout == serial.lout
        assert labels.lin == serial.lin

    def test_oracle_with_workers_answers_exactly(self):
        graph = random_dag(60, 250, seed=4)
        serial = DistributionLabeling(graph)
        sharded = DistributionLabeling(graph, workers=2)
        assert sharded.labels.lout == serial.labels.lout
        rng = random.Random(11)
        pairs = [(rng.randrange(60), rng.randrange(60)) for _ in range(300)]
        assert sharded.query_batch(pairs) == serial.query_batch(pairs)
        # The mask-path seal must match too (same query acceleration).
        assert (sharded.labels._out_masks is None) == (
            serial.labels._out_masks is None
        )


class TestCleaning:
    def test_clean_side_exact_rule(self):
        # drop (i, w) iff ∃ j < i with batch_vertices[j] ∈ F_i and w ∈ F_j
        batch_vertices = [7, 3]
        tentative = [[7, 3, 9], [3, 9, 5]]
        cleaned = _clean_side(batch_vertices, tentative)
        assert cleaned[0] == [7, 3, 9]  # first hop never cleaned
        # j=0: vertices[0]=7 ∈ F_1? no (F_1 = {3, 9, 5}) -> keep all
        assert cleaned[1] == [3, 9, 5]
        tentative = [[7, 3, 9], [7, 9, 5]]
        cleaned = _clean_side(batch_vertices, tentative)
        # j=0: 7 ∈ F_1 -> drop every w ∈ F_1 ∩ F_0 = {7, 9}
        assert cleaned[1] == [5]
