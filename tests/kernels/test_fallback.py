"""Graceful degradation when NumPy is absent.

All kernel entry points funnel their NumPy access through
:func:`repro.kernels.numpy_or_none`, so shimming that single import
point simulates a NumPy-free interpreter for the backend-selection
logic (the modules that bound the name at import time are patched
alongside).
"""

from __future__ import annotations

import random
import warnings

import pytest

import repro.kernels as kernels
import repro.kernels.batchquery as batchquery
from repro.baselines.grail import Grail
from repro.baselines.pruned_landmark import PrunedLandmark
from repro.core.distribution import DistributionLabeling
from repro.core.hierarchical import HierarchicalLabeling
from repro.graph.generators import random_dag


@pytest.fixture
def no_numpy(monkeypatch):
    monkeypatch.setattr(kernels, "numpy_or_none", lambda: None)
    monkeypatch.setattr(batchquery, "numpy_or_none", lambda: None)


def test_resolve_backend_degrades_with_warning(no_numpy):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert kernels.resolve_backend("numpy", 10_000) == "python"
    assert any(issubclass(w.category, RuntimeWarning) for w in caught)
    # "auto" degrades silently.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert kernels.resolve_backend("auto", 10_000) == "python"
    assert not caught


@pytest.mark.parametrize(
    "factory",
    [DistributionLabeling, HierarchicalLabeling, Grail, PrunedLandmark],
    ids=["DL", "HL", "GL", "PL"],
)
def test_forced_numpy_backend_still_builds_correctly(no_numpy, factory):
    graph = random_dag(40, 120, seed=3)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        idx = factory(graph, backend="numpy")
        reference = factory(graph, backend="python")
    rng = random.Random(1)
    pairs = [(rng.randrange(40), rng.randrange(40)) for _ in range(300)]
    assert [idx.query(u, v) for u, v in pairs] == [
        reference.query(u, v) for u, v in pairs
    ]


def test_batch_queries_fall_back_to_scalar(no_numpy):
    graph = random_dag(60, 100, seed=5)
    idx = DistributionLabeling(graph)
    rng = random.Random(2)
    pairs = [(rng.randrange(60), rng.randrange(60)) for _ in range(6000)]
    assert idx.query_batch(pairs) == idx.labels.query_batch(pairs)
    assert getattr(idx, "_batch_engine", None) is None


def test_backend_validation():
    with pytest.raises(ValueError):
        kernels.resolve_backend("fortran")


def test_artifact_round_trip_without_numpy(no_numpy, monkeypatch, tmp_path):
    """Artifacts save and serve through memoryview casts when NumPy is
    shimmed away — the mmap sharing story does not depend on it."""
    import repro.artifact as artifact_mod

    monkeypatch.setattr(artifact_mod, "numpy_or_none", lambda: None, raising=False)
    # artifact.py resolves numpy through repro.kernels at call time.
    from repro.serialization import load_artifact, save_artifact

    graph = random_dag(60, 160, seed=7)
    idx = DistributionLabeling(graph)
    path = tmp_path / "dl.rpro"
    save_artifact(idx, path)
    loaded = load_artifact(path)
    assert not hasattr(loaded.labels._out_hops, "dtype")  # memoryview, not ndarray
    pairs = [(u, v) for u in range(graph.n) for v in range(graph.n)]
    assert loaded.query_batch(pairs) == [idx.query(u, v) for u, v in pairs]


def test_pipeline_artifact_without_numpy(no_numpy, tmp_path):
    from repro.facade import Reachability
    from repro.graph.generators import powerlaw_digraph

    graph = powerlaw_digraph(200, 600, seed=9)
    r = Reachability(graph, "DL")
    path = tmp_path / "pipe.rpro"
    r.save(path)
    served = Reachability.load(path)
    rng = random.Random(3)
    pairs = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(800)]
    assert served.query_batch(pairs) == r.query_batch(pairs)
