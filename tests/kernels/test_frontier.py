"""Unit tests for the shared frontier primitives and CSR numpy caching."""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.graph.generators import citation_dag, random_dag
from repro.kernels.frontier import (
    HeightLevels,
    Stamped,
    compute_heights_numpy,
    hashset_build,
    hashset_contains,
    multi_source_within,
    segmented_gather,
)
from repro.kernels.grail import compute_heights


class TestCsrNumpyCache:
    def test_cached_and_read_only(self):
        g = random_dag(30, 80, seed=1)
        csr = g.csr()
        views = csr.as_numpy()
        assert csr.as_numpy() is views  # cached, not rebuilt per call
        for arr in views:
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 99

    def test_round_trip_matches_adjacency(self):
        g = random_dag(25, 70, seed=2)
        oo, ot, io_, it_ = g.csr().as_numpy()
        for u in range(g.n):
            assert list(ot[oo[u] : oo[u + 1]]) == g.out_adj[u]
            assert list(it_[io_[u] : io_[u + 1]]) == g.in_adj[u]


class TestSegmentedGather:
    def test_matches_list_concatenation(self):
        g = random_dag(40, 150, seed=3)
        oo, ot, _, _ = g.csr().as_numpy()
        sources = np.array([5, 0, 17, 5], dtype=np.int64)
        seg, values = segmented_gather(oo, ot, sources)
        expected = []
        expected_seg = []
        for i, s in enumerate(sources.tolist()):
            expected.extend(g.out_adj[s])
            expected_seg.extend([i] * len(g.out_adj[s]))
        assert values.tolist() == expected
        assert seg.tolist() == expected_seg

    def test_empty_sources(self):
        g = random_dag(10, 20, seed=4)
        oo, ot, _, _ = g.csr().as_numpy()
        seg, values = segmented_gather(oo, ot, np.empty(0, dtype=np.int64))
        assert len(seg) == 0 and len(values) == 0


class TestMultiSourceWithin:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_matches_per_source_bfs(self, seed, depth):
        from repro.core.backbone import _bounded_bfs

        g = random_dag(50, 200, seed=seed)
        oo, ot, _, _ = g.csr().as_numpy()
        rng = random.Random(seed)
        sources = sorted(rng.sample(range(g.n), 12))
        src, vert = multi_source_within(
            oo, ot, np.array(sources, dtype=np.int64), depth, g.n
        )
        got = {}
        for s, v in zip(src.tolist(), vert.tolist()):
            got.setdefault(s, set()).add(v)
        for i, s in enumerate(sources):
            expected = set(_bounded_bfs(g.out_adj, s, depth)) - {s}
            assert got.get(i, set()) == expected

    def test_levels_are_bfs_distances(self):
        from repro.core.backbone import _bounded_bfs

        g = citation_dag(60, out_per_vertex=3, seed=7)
        oo, ot, _, _ = g.csr().as_numpy()
        sources = np.array([40, 55], dtype=np.int64)
        src, vert, lev = multi_source_within(oo, ot, sources, 3, g.n, levels=True)
        for s_idx, v, l in zip(src.tolist(), vert.tolist(), lev.tolist()):
            dist = _bounded_bfs(g.out_adj, int(sources[s_idx]), 3)
            assert dist[v] == l


class TestHeights:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scalar(self, seed):
        g = random_dag(60, 200, seed=seed)
        heights = compute_heights_numpy(np, g.csr().as_numpy())
        assert heights.tolist() == compute_heights(g)

    def test_levels_grouping(self):
        g = random_dag(40, 120, seed=2)
        h = compute_heights_numpy(np, g.csr().as_numpy())
        levels = HeightLevels(h)
        seen = []
        for lvl in range(levels.max_height + 1):
            vs = levels.level(lvl)
            assert (h[vs] == lvl).all()
            seen.extend(vs.tolist())
        assert sorted(seen) == list(range(g.n))


class TestHashset:
    @pytest.mark.parametrize("seed", range(6))
    def test_membership_exact(self, seed):
        rng = random.Random(seed)
        universe = rng.randrange(100, 1 << 20)
        keys = np.array(
            sorted(rng.sample(range(universe), rng.randrange(1, 4000))),
            dtype=np.int32,
        )
        table = hashset_build(np, keys)
        queries = np.array(
            [rng.randrange(universe) for _ in range(5000)], dtype=np.int32
        )
        got = hashset_contains(np, table, queries)
        member = set(keys.tolist())
        assert got.tolist() == [q in member for q in queries.tolist()]


class TestStamped:
    def test_dedup_across_levels(self):
        vis = Stamped(10)
        vis.next_sweep()
        first = vis.unseen(np.array([3, 3, 5], dtype=np.int64))
        assert first.tolist() == [3, 5]
        again = vis.unseen(np.array([5, 7], dtype=np.int64))
        assert again.tolist() == [7]
        vis.next_sweep()  # O(1) reset
        assert vis.unseen(np.array([5], dtype=np.int64)).tolist() == [5]
