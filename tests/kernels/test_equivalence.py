"""Property-style equivalence: numpy kernels vs scalar paths.

The kernel backend's contract is *bit-identical output*: labels, query
answers, and witnesses must match the scalar implementations exactly on
every input.  These tests sweep seeded random DAGs (plus the structured
families) through every method that grew a ``backend`` knob.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.grail import Grail
from repro.baselines.pruned_landmark import PrunedLandmark
from repro.core.distribution import DistributionLabeling
from repro.core.hierarchical import HierarchicalLabeling
from repro.graph.generators import citation_dag, layered_dag, random_dag, sparse_dag

pytest.importorskip("numpy")


def _random_case(seed: int):
    rng = random.Random(seed)
    n = rng.randrange(12, 90)
    m = rng.randrange(n, 4 * n)
    return random_dag(n, m, seed=seed)


STRUCTURED = [
    citation_dag(80, out_per_vertex=3, seed=5),
    sparse_dag(70, 0.02, seed=3),
    layered_dag(6, 9, 3, seed=2),
]


def _sample_pairs(graph, rng, count=200):
    n = graph.n
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]
    pairs.extend((v, v) for v in range(0, n, max(1, n // 5)))  # reflexive
    return pairs


class TestDistributionLabeling:
    @pytest.mark.parametrize("seed", range(50))
    def test_labels_answers_witnesses_identical(self, seed):
        graph = _random_case(seed)
        py = DistributionLabeling(graph, backend="python")
        np_ = DistributionLabeling(graph, backend="numpy")
        assert py.labels.lout == np_.labels.lout
        assert py.labels.lin == np_.labels.lin
        # The numpy build attaches the same sealed state (bigint masks
        # on the mask path, unsealed-then-hybrid elsewhere).
        assert py.labels._out_masks == np_.labels._out_masks
        assert py.labels._in_masks == np_.labels._in_masks
        rng = random.Random(seed + 1)
        pairs = _sample_pairs(graph, rng)
        assert py.query_batch(pairs) == np_.query_batch(pairs)
        for u, v in pairs:
            assert py.witness(u, v) == np_.witness(u, v)

    @pytest.mark.parametrize("graph", STRUCTURED, ids=["citation", "sparse", "layered"])
    def test_structured_families(self, graph):
        py = DistributionLabeling(graph, backend="python")
        np_ = DistributionLabeling(graph, backend="numpy")
        assert py.labels.lout == np_.labels.lout
        assert py.labels.lin == np_.labels.lin


class TestHierarchicalLabeling:
    @pytest.mark.parametrize("seed", range(0, 50, 3))
    def test_labels_and_answers_identical(self, seed):
        graph = _random_case(seed)
        py = HierarchicalLabeling(graph, backend="python")
        np_ = HierarchicalLabeling(graph, backend="numpy")
        assert py.labels.lout == np_.labels.lout
        assert py.labels.lin == np_.labels.lin
        rng = random.Random(seed + 2)
        pairs = _sample_pairs(graph, rng)
        assert py.query_batch(pairs) == np_.query_batch(pairs)
        for u, v in pairs[:60]:
            assert py.witness(u, v) == np_.witness(u, v)


class TestGrail:
    @pytest.mark.parametrize("seed", range(0, 50, 3))
    def test_intervals_and_answers_identical(self, seed):
        graph = _random_case(seed)
        py = Grail(graph, backend="python")
        np_ = Grail(graph, backend="numpy")
        assert py._lows == np_._lows
        assert py._posts == np_._posts
        assert py._heights == np_._heights
        rng = random.Random(seed + 3)
        for u, v in _sample_pairs(graph, rng):
            assert py.query(u, v) == np_.query(u, v)


class TestPrunedLandmark:
    @pytest.mark.parametrize("seed", range(0, 50, 3))
    def test_distance_labels_identical(self, seed):
        graph = _random_case(seed)
        py = PrunedLandmark(graph, backend="python")
        np_ = PrunedLandmark(graph, backend="numpy")
        assert py._lout_h == np_._lout_h
        assert py._lout_d == np_._lout_d
        assert py._lin_h == np_._lin_h
        assert py._lin_d == np_._lin_d
        rng = random.Random(seed + 4)
        for u, v in _sample_pairs(graph, rng, count=80):
            assert py.distance(u, v) == np_.distance(u, v)
