"""The vectorized batch query engine must equal the scalar path bit
for bit, under every stage combination its adaptive gates can pick."""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.distribution import DistributionLabeling
from repro.graph.generators import citation_dag, random_dag, sparse_dag
from repro.kernels.batchquery import BatchQueryEngine, engine_query_batch
from repro.serialization import FrozenOracle


def _workloads(graph, rng, count=1500):
    n = graph.n
    rnd = [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]
    rnd.extend((v, v) for v in range(0, n, max(1, n // 7)))
    out_adj = graph.out_adj
    eq = []
    while len(eq) < count // 2:
        u = rng.randrange(n)
        w = u
        for _ in range(rng.randrange(1, 8)):
            nbrs = out_adj[w]
            if not nbrs:
                break
            w = nbrs[rng.randrange(len(nbrs))]
        eq.append((u, w))
    return rnd, eq


@pytest.mark.parametrize("seed", range(10))
def test_engine_matches_scalar_on_random_dags(seed):
    rng = random.Random(seed)
    n = rng.randrange(40, 200)
    graph = random_dag(n, rng.randrange(n, 5 * n), seed=seed)
    idx = DistributionLabeling(graph)
    labels = idx.labels
    engine = BatchQueryEngine(np, labels, graph)
    for pairs in _workloads(graph, rng):
        expected = labels.query_batch(pairs)
        assert engine.query_batch(pairs) == expected
        assert engine.query_batch(np.array(pairs, dtype=np.int64)) == expected


@pytest.mark.parametrize(
    "make",
    [
        lambda: citation_dag(300, out_per_vertex=3, seed=2),
        lambda: sparse_dag(400, 0.004, seed=5),
        lambda: random_dag(250, 2200, seed=7),
    ],
    ids=["citation", "sparse", "dense"],
)
def test_engine_matches_scalar_on_families(make):
    graph = make()
    idx = DistributionLabeling(graph)
    labels = idx.labels
    engine = BatchQueryEngine(np, labels, graph)
    rng = random.Random(3)
    for pairs in _workloads(graph, rng):
        assert engine.query_batch(pairs) == labels.query_batch(pairs)


def test_engine_without_graph_aux():
    """A frozen oracle carries no graph: label-only stages must suffice."""
    graph = random_dag(150, 700, seed=1)
    idx = DistributionLabeling(graph)
    labels = idx.labels
    engine = BatchQueryEngine(np, labels, None)
    assert engine.height is None and engine.rounds == []
    rng = random.Random(9)
    for pairs in _workloads(graph, rng):
        assert engine.query_batch(pairs) == labels.query_batch(pairs)


def test_engine_staleness_on_reseal():
    graph = random_dag(100, 500, seed=4)
    idx = DistributionLabeling(graph)
    labels = idx.labels
    engine = BatchQueryEngine(np, labels, graph)
    assert not engine.stale(labels)
    labels.seal()
    assert engine.stale(labels)


def test_engine_query_batch_routing(monkeypatch):
    """Large arena batches engage the engine; mask labels stay scalar."""
    graph = sparse_dag(600, 0.002, seed=6)  # below the mask density floor
    idx = DistributionLabeling(graph)
    assert idx.labels._out_masks is None  # sets-path build
    rng = random.Random(2)
    pairs = [(rng.randrange(600), rng.randrange(600)) for _ in range(5000)]
    expected = idx.labels.query_batch(pairs)
    assert idx.query_batch(pairs) == expected
    assert isinstance(getattr(idx, "_batch_engine", None), BatchQueryEngine)
    # Small batches skip the engine but answer identically.
    assert idx.query_batch(pairs[:50]) == expected[:50]

    # Small mask-sealed labels stay on the scalar AND loop (one C-level
    # AND per pair is already optimal below _MASK_LABELS_MIN_N) ...
    dense = DistributionLabeling(random_dag(120, 600, seed=3))
    assert dense.labels._out_masks is not None
    pairs = [(rng.randrange(120), rng.randrange(120)) for _ in range(5000)]
    assert dense.query_batch(pairs) == dense.labels.query_batch(pairs)
    assert getattr(dense, "_batch_engine", None) is None
    # ... while big mask-sealed labels switch to the engine.
    big = DistributionLabeling(citation_dag(4500, out_per_vertex=3, seed=1))
    assert big.labels._out_masks is not None
    pairs = [(rng.randrange(4500), rng.randrange(4500)) for _ in range(5000)]
    assert big.query_batch(pairs) == big.labels.query_batch(pairs)
    assert isinstance(getattr(big, "_batch_engine", None), BatchQueryEngine)


def test_frozen_oracle_uses_engine_for_big_arena_batches():
    graph = sparse_dag(700, 0.002, seed=8)
    idx = DistributionLabeling(graph)
    oracle = FrozenOracle(idx.labels, "DL", rank_space=True)
    rng = random.Random(5)
    pairs = [(rng.randrange(700), rng.randrange(700)) for _ in range(5000)]
    assert oracle.query_batch(pairs) == idx.labels.query_batch(pairs)


def test_empty_labels_certify_negative_not_positive():
    """Both-sides-empty pairs must answer False: the per-side empty
    sentinels may never collide on the min/max equality certificate."""
    from repro.core.labels import LabelSet

    ls = LabelSet(2)
    ls.lout[1] = [0]
    ls.lin[0] = [0]
    ls.seal()  # lout[0] and lin[1] stay empty
    engine = BatchQueryEngine(np, ls)
    pairs = np.array([(0, 1)] * 5000, dtype=np.int64)
    assert engine.query_batch(pairs) == ls.query_batch(pairs)


def test_generator_input_is_materialised():
    graph = random_dag(80, 300, seed=12)
    idx = DistributionLabeling(graph)
    rng = random.Random(0)
    pairs = [(rng.randrange(80), rng.randrange(80)) for _ in range(200)]
    assert idx.query_batch(iter(pairs)) == idx.query_batch(pairs)
