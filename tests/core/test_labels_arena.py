"""Randomized agreement tests for the sealed label layouts.

The arena/hybrid/mask structures built by :meth:`LabelSet.seal` are pure
accelerators: every query path must agree with the canonical unsealed
merge (``intersects`` on the sorted lists) on arbitrary label sets.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labels import LabelSet, intersects

sorted_label = st.lists(st.integers(0, 120), max_size=12).map(
    lambda xs: sorted(set(xs))
)


def _random_labelset(n: int, seed: int, max_hop: int = 200, max_len: int = 9) -> LabelSet:
    rng = random.Random(seed)
    ls = LabelSet(n)
    for u in range(n):
        ls.lout[u] = sorted(rng.sample(range(max_hop), rng.randrange(max_len)))
        ls.lin[u] = sorted(rng.sample(range(max_hop), rng.randrange(max_len)))
    return ls


def _truth(ls: LabelSet):
    return [
        [intersects(ls.lout[u], ls.lin[v]) for v in range(ls.n)]
        for u in range(ls.n)
    ]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("set_min", [0, 1, 2, 4, 100])
def test_sealed_query_matches_unsealed(seed, set_min):
    ls = _random_labelset(25, seed)
    expected = _truth(ls)
    ls.seal(set_min=set_min)
    for u in range(ls.n):
        for v in range(ls.n):
            assert ls.query(u, v) == expected[u][v], (u, v, set_min)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("kwargs", [dict(), dict(set_min=0), dict(set_min=100), dict(build_masks=True)])
def test_query_batch_matches_query(seed, kwargs):
    ls = _random_labelset(30, seed)
    ls.seal(**kwargs)
    rng = random.Random(seed + 99)
    pairs = [(rng.randrange(ls.n), rng.randrange(ls.n)) for _ in range(300)]
    assert ls.query_batch(pairs) == [ls.query(u, v) for u, v in pairs]


def test_unsealed_query_batch_uses_merge_path():
    ls = _random_labelset(20, seed=7)
    pairs = [(u, v) for u in range(20) for v in range(20)]
    expected = [intersects(ls.lout[u], ls.lin[v]) for u, v in pairs]
    assert ls.lout_sets is None
    assert ls.query_batch(pairs) == expected


def test_mask_path_matches_hybrid_path():
    ls = _random_labelset(40, seed=11)
    ls.seal()
    hybrid = _truth(ls)
    ls2 = _random_labelset(40, seed=11)
    ls2.seal(build_masks=True)
    assert ls2._out_masks is not None
    for u in range(40):
        for v in range(40):
            assert ls2.query(u, v) == hybrid[u][v]


def test_attach_masks_validates_length():
    ls = LabelSet(3)
    with pytest.raises(ValueError):
        ls.attach_masks([0], [0])


def test_or_in_mask_keeps_masks_coherent():
    ls = LabelSet(2)
    ls.lout[0] = [4]
    ls.seal(build_masks=True)
    assert not ls.query(0, 1)
    # Simulate an incremental Lin update: list + mask together.
    ls.lin[1] = [4]
    ls.or_in_mask(1, 1 << 4)
    assert ls.query(0, 1)


def test_drop_masks_reverts_to_live_lin():
    ls = LabelSet(2)
    ls.lout[0] = [3]
    ls.seal(build_masks=True)
    ls.drop_masks()
    ls.lin[1] = [3]  # live-lin contract holds again
    assert ls.query(0, 1)


def test_sealed_property():
    ls = LabelSet(1)
    assert not ls.sealed
    ls.seal()
    assert ls.sealed


def test_masks_skipped_when_hops_exceed_limit():
    from repro.core import labels as labels_mod

    ls = LabelSet(2)
    ls.lout[0] = [labels_mod._MASK_LIMIT + 5]
    ls.lin[1] = [labels_mod._MASK_LIMIT + 5]
    ls.seal(build_masks=True)
    assert ls._out_masks is None  # hop id too large for a mask bit
    assert ls.query(0, 1)


@given(st.lists(sorted_label, min_size=2, max_size=6), st.lists(sorted_label, min_size=2, max_size=6))
@settings(max_examples=60)
def test_hypothesis_seal_agreement(louts, lins):
    n = min(len(louts), len(lins))
    ls = LabelSet(n)
    for u in range(n):
        ls.lout[u] = louts[u]
        ls.lin[u] = lins[u]
    expected = _truth(ls)
    ls.seal(build_masks=True)
    got = [[ls.query(u, v) for v in range(n)] for u in range(n)]
    assert got == expected


def test_reseal_after_lout_mutation_drops_stale_masks():
    """Regression: a re-seal must never answer from pre-mutation masks."""
    from repro.core.distribution import DistributionLabeling
    from repro.graph.generators import random_dag

    dl = DistributionLabeling(random_dag(30, 70, seed=6))
    labels = dl.labels
    assert labels._out_masks is not None  # mask-sealed by construction
    # Give vertex 0 a hop certifying reachability to everything with
    # that hop in Lin, then re-seal per the documented contract.
    target = next(v for v in range(labels.n) if labels.lin[v] and v != 0)
    hop = labels.lin[target][0]
    if hop not in labels.lout[0]:
        labels.lout[0] = sorted(labels.lout[0] + [hop])
    labels.seal()
    assert labels._out_masks is None  # stale masks dropped
    assert labels.query(0, target)  # answered from the fresh lists


def test_drop_masks_restores_set_mirrors():
    from repro.core.distribution import DistributionLabeling
    from repro.graph.generators import random_dag

    dl = DistributionLabeling(random_dag(40, 120, seed=8))
    labels = dl.labels
    truth = _truth(labels)
    labels.drop_masks()
    # Large labels must be back on the frozenset mirror, not arena scans.
    assert any(s is not None for s in labels.lout_sets)
    got = [[labels.query(u, v) for v in range(labels.n)] for u in range(labels.n)]
    assert got == truth
