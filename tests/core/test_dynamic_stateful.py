"""Stateful property test for DynamicDL.

Hypothesis drives an arbitrary interleaving of edge insertions and
queries against a shadow graph; every query must match BFS truth and
every rejected insertion must actually have been cycle-creating.
"""

import random

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.core.dynamic import DynamicDL
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import bfs_reaches


class DynamicOracleMachine(RuleBasedStateMachine):
    @initialize(
        n=st.integers(3, 14),
        m=st.integers(0, 20),
        seed=st.integers(0, 1000),
    )
    def setup(self, n, m, seed):
        self.shadow = random_dag(n, m, seed=seed).copy()
        self.oracle = DynamicDL(self.shadow, auto_rebuild_factor=0)
        self.n = n

    @rule(u=st.integers(0, 13), v=st.integers(0, 13))
    def insert(self, u, v):
        u %= self.n
        v %= self.n
        if u == v or self.shadow.has_edge(u, v):
            return
        creates_cycle = bfs_reaches(self.shadow.out_adj, v, u)
        if creates_cycle:
            try:
                self.oracle.insert_edge(u, v)
                raise AssertionError("cycle-creating insert was accepted")
            except ValueError:
                return
        self.oracle.insert_edge(u, v)
        self.shadow.add_edge(u, v)

    @rule()
    def rebuild(self):
        self.oracle.rebuild()

    @rule(u=st.integers(0, 13), v=st.integers(0, 13))
    def query(self, u, v):
        u %= self.n
        v %= self.n
        assert self.oracle.query(u, v) == bfs_reaches(self.shadow.out_adj, u, v)

    @invariant()
    def edge_counts_agree(self):
        if hasattr(self, "shadow"):
            assert self.oracle.m == self.shadow.m


TestDynamicOracleStateful = DynamicOracleMachine.TestCase
TestDynamicOracleStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
