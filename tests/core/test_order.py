"""Tests for vertex ranking strategies."""

import pytest

from repro.core.order import (
    degree_product_order,
    degree_sum_order,
    get_order,
    random_order,
    topo_center_order,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_dag, random_dag, star_dag


class TestDegreeProduct:
    def test_is_permutation(self):
        g = random_dag(50, 120, seed=1)
        order = degree_product_order(g)
        assert sorted(order) == list(range(50))

    def test_hub_ranks_first(self):
        # Middle of a path through a hub: hub has in=out=3.
        g = DiGraph(7)
        for v in (1, 2, 3):
            g.add_edge(v, 0)
        for v in (4, 5, 6):
            g.add_edge(0, v)
        g.freeze()
        assert degree_product_order(g)[0] == 0

    def test_rank_value_descending(self):
        g = random_dag(40, 100, seed=2)
        order = degree_product_order(g)
        ranks = [
            (g.out_degree(v) + 1) * (g.in_degree(v) + 1) for v in order
        ]
        assert ranks == sorted(ranks, reverse=True)

    def test_deterministic(self):
        g = random_dag(30, 60, seed=3)
        assert degree_product_order(g) == degree_product_order(g)

    def test_source_ranks_above_isolated(self):
        # A source with out-degree 1 has rank 2; isolated vertex rank 1.
        g = DiGraph.from_edges(3, [(0, 1)])
        order = degree_product_order(g)
        assert order.index(0) < order.index(2)


class TestDegreeSum:
    def test_is_permutation(self):
        g = random_dag(30, 70, seed=4)
        assert sorted(degree_sum_order(g)) == list(range(30))

    def test_star_center_first(self):
        assert degree_sum_order(star_dag(10))[0] == 0


class TestRandomOrder:
    def test_is_permutation(self):
        g = random_dag(30, 60, seed=5)
        assert sorted(random_order(g, seed=1)) == list(range(30))

    def test_seed_dependence(self):
        g = random_dag(30, 60, seed=5)
        assert random_order(g, seed=1) != random_order(g, seed=2)

    def test_seed_determinism(self):
        g = random_dag(30, 60, seed=5)
        assert random_order(g, seed=3) == random_order(g, seed=3)


class TestTopoCenter:
    def test_is_permutation(self):
        g = path_dag(9)
        assert sorted(topo_center_order(g)) == list(range(9))

    def test_path_center_first(self):
        order = topo_center_order(path_dag(9))
        assert order[0] == 4

    def test_cycle_raises(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            topo_center_order(g)


class TestRegistry:
    def test_lookup(self):
        assert get_order("degree_product") is degree_product_order

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(KeyError, match="degree_product"):
            get_order("nope")
