"""Tests for the index base class and the method registry."""

import pytest

from repro.core.base import ReachabilityIndex, get_method, method_registry
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_dag, random_dag


EXPECTED_METHODS = {
    "DL", "HL", "TF", "PT", "PT*", "INT", "PW8", "KR", "2HOP",
    "PL", "GL", "GL*", "BFS", "DFS", "CH", "TREE", "DUAL", "3HOP", "ISL",
}


class TestRegistry:
    def test_all_paper_methods_registered(self):
        assert EXPECTED_METHODS <= set(method_registry())

    def test_lookup_case_insensitive(self):
        assert get_method("dl") is get_method("DL")

    def test_unknown_method(self):
        with pytest.raises(KeyError, match="unknown method"):
            get_method("nope")

    def test_registry_returns_copy(self):
        reg = method_registry()
        reg.clear()
        assert method_registry()  # original untouched


class TestBaseBehaviour:
    def test_unfrozen_graph_is_frozen_copy(self):
        g = DiGraph(3)
        g.add_edge(0, 1)
        idx = get_method("BFS")(g)
        assert idx.graph.frozen
        # Original stays mutable.
        g.add_edge(1, 2)

    def test_query_batch_matches_query(self):
        g = random_dag(30, 70, seed=1)
        idx = get_method("DL")(g)
        pairs = [(u, v) for u in range(0, 30, 4) for v in range(0, 30, 5)]
        assert idx.query_batch(pairs) == [idx.query(u, v) for u, v in pairs]

    def test_count_reachable(self):
        g = path_dag(4)
        idx = get_method("DL")(g)
        pairs = [(0, 3), (3, 0), (1, 2)]
        assert idx.count_reachable(pairs) == 2

    def test_stats_common_fields(self):
        g = path_dag(5)
        for name in ("DL", "HL", "GL", "INT"):
            stats = get_method(name)(g).stats()
            assert stats["n"] == 5
            assert stats["m"] == 4
            assert stats["index_size_ints"] >= 0

    def test_repr(self):
        g = path_dag(3)
        assert "n=3" in repr(get_method("DL")(g))

    def test_params_recorded(self):
        g = path_dag(3)
        idx = get_method("DL")(g, order="degree_sum")
        assert idx.params == {"order": "degree_sum"}
