"""Tests for the one-side reachability backbone and hierarchy.

These check the paper's Definition 1 / Lemma 1 invariants directly:
cover condition, reachability preservation on the backbone graph, and
the non-local routing property that Hierarchical-Labeling relies on.
"""

import pytest

from repro.core.backbone import (
    build_backbone_level,
    extract_cover,
    hierarchical_decomposition,
)
from repro.core.order import degree_product_order
from repro.graph.closure import transitive_closure_bits
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    citation_dag,
    layered_dag,
    path_dag,
    random_dag,
    sparse_dag,
)
from repro.graph.topo import is_dag
from repro.graph.traversal import bfs_within


GRAPHS = [
    random_dag(40, 100, seed=1),
    random_dag(30, 35, seed=2),
    sparse_dag(50, 0.1, seed=3),
    citation_dag(45, 3, seed=4),
    layered_dag(5, 7, 2, seed=5),
    path_dag(25),
]


def _check_two_path_cover(graph, cover):
    """Every u -> x -> w must have one of {u, x, w} in the cover."""
    in_cover = set(cover)
    for x in graph.vertices():
        if x in in_cover:
            continue
        for u in graph.inn(x):
            if u in in_cover:
                continue
            for w in graph.out(x):
                assert w in in_cover, f"2-path {u}->{x}->{w} uncovered"


def _check_vertex_cover(graph, cover):
    in_cover = set(cover)
    for u, v in graph.edges():
        assert u in in_cover or v in in_cover, f"edge {u}->{v} uncovered"


class TestCoverExtraction:
    @pytest.mark.parametrize("graph", GRAPHS)
    def test_eps2_cover_hits_all_two_paths(self, graph):
        order = degree_product_order(graph)
        cover = extract_cover(graph, 2, order)
        _check_two_path_cover(graph, cover)

    @pytest.mark.parametrize("graph", GRAPHS)
    def test_eps1_cover_hits_all_edges(self, graph):
        order = degree_product_order(graph)
        cover = extract_cover(graph, 1, order)
        _check_vertex_cover(graph, cover)

    def test_eps2_cover_shrinks(self):
        g = random_dag(100, 250, seed=6)
        cover = extract_cover(g, 2, degree_product_order(g))
        assert len(cover) < g.n

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            extract_cover(path_dag(3), 3, [0, 1, 2])

    def test_edgeless_cover_empty(self):
        g = DiGraph(5)
        assert extract_cover(g, 2, list(range(5))) == []


class TestBackboneLevel:
    @pytest.mark.parametrize("eps", [1, 2])
    @pytest.mark.parametrize("graph", GRAPHS)
    def test_backbone_graph_is_dag(self, graph, eps):
        level = build_backbone_level(graph, eps=eps)
        assert is_dag(level.backbone_graph)

    @pytest.mark.parametrize("eps", [1, 2])
    @pytest.mark.parametrize("graph", GRAPHS)
    def test_lemma1_reachability_preserved(self, graph, eps):
        """u, v in V*: u reaches v in G iff u reaches v in G*."""
        level = build_backbone_level(graph, eps=eps)
        tc = transitive_closure_bits(graph)
        btc = transitive_closure_bits(level.backbone_graph)
        for bu in level.backbone_vertices:
            for bv in level.backbone_vertices:
                in_g = bool((tc[bu] >> bv) & 1)
                in_b = bool(
                    (btc[level.to_backbone[bu]] >> level.to_backbone[bv]) & 1
                )
                assert in_g == in_b, f"Lemma 1 violated for ({bu},{bv})"

    @pytest.mark.parametrize("graph", GRAPHS)
    def test_backbone_edges_join_close_pairs(self, graph):
        """E* only links pairs with d(u*, v*) <= eps + 1 in Gi."""
        eps = 2
        level = build_backbone_level(graph, eps=eps)
        for bu, bv in level.backbone_graph.edges():
            u = level.from_backbone[bu]
            v = level.from_backbone[bv]
            dist = bfs_within(graph.out_adj, u, eps + 1)
            assert v in dist and 1 <= dist[v] <= eps + 1

    @pytest.mark.parametrize("graph", GRAPHS)
    def test_non_local_pairs_route_through_backbone(self, graph):
        """For reachable pairs with d > eps, an entry->exit pair exists."""
        eps = 2
        level = build_backbone_level(graph, eps=eps)
        backbone = set(level.backbone_vertices)
        tc = transitive_closure_bits(graph)
        btc = transitive_closure_bits(level.backbone_graph)
        for u in graph.vertices():
            fwd = bfs_within(graph.out_adj, u, eps)
            entries = [x for x in fwd if x in backbone]
            for v in graph.vertices():
                if u == v or not ((tc[u] >> v) & 1):
                    continue
                if v in fwd:
                    continue  # local pair
                bwd = bfs_within(graph.in_adj, v, eps)
                exits = [x for x in bwd if x in backbone]
                assert entries and exits, f"no entry/exit for non-local ({u},{v})"
                ok = any(
                    (btc[level.to_backbone[e]] >> level.to_backbone[x]) & 1
                    for e in entries
                    for x in exits
                )
                assert ok, f"no backbone route for non-local pair ({u},{v})"

    @pytest.mark.parametrize("graph", GRAPHS)
    def test_bsets_are_backbone_members_within_eps(self, graph):
        eps = 2
        level = build_backbone_level(graph, eps=eps)
        backbone = set(level.backbone_vertices)
        for v in graph.vertices():
            if v in backbone:
                assert level.bout[v] == [] and level.bin_[v] == []
                continue
            fwd = bfs_within(graph.out_adj, v, eps)
            for u in level.bout[v]:
                assert u in backbone
                assert u in fwd
            bwd = bfs_within(graph.in_adj, v, eps)
            for u in level.bin_[v]:
                assert u in backbone
                assert u in bwd


class TestHierarchy:
    def test_levels_strictly_shrink(self):
        g = random_dag(200, 500, seed=7)
        h = hierarchical_decomposition(g, core_limit=10)
        sizes = h.level_sizes()
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_core_limit_respected_or_no_shrink(self):
        g = random_dag(150, 400, seed=8)
        h = hierarchical_decomposition(g, core_limit=30)
        # Either the core got small enough, or extraction stalled.
        assert h.core_graph.n <= 30 or h.height == 0 or (
            h.levels[-1].backbone_graph.n == h.core_graph.n
        )

    def test_max_levels_bound(self):
        g = random_dag(300, 700, seed=9)
        h = hierarchical_decomposition(g, core_limit=1, max_levels=2)
        assert h.height <= 2

    def test_orig_mapping_chains(self):
        g = random_dag(120, 300, seed=10)
        h = hierarchical_decomposition(g, core_limit=20)
        if h.height:
            # Core vertices map to level-(h-1) backbone members.
            lvl = h.levels[-1]
            parent_orig = h.orig_of_level[-1]
            expect = [parent_orig[v] for v in lvl.from_backbone]
            assert h.orig_of_core == expect

    def test_tiny_graph_all_core(self):
        g = path_dag(5)
        h = hierarchical_decomposition(g, core_limit=64)
        assert h.height == 0
        assert h.core_graph.n == 5
        assert h.orig_of_core == [0, 1, 2, 3, 4]

    def test_repr(self):
        g = random_dag(100, 250, seed=11)
        h = hierarchical_decomposition(g, core_limit=16)
        assert "levels=" in repr(h)
