"""Tests for Cohen k-min closure-size estimation."""

import pytest

from repro.core.estimation import estimate_closure_sizes, estimate_tc_pairs
from repro.graph.digraph import DiGraph
from repro.graph.closure import closure_pairs_count, transitive_closure_bits
from repro.graph.generators import citation_dag, path_dag, random_dag


class TestClosureSizes:
    def test_exact_when_sets_smaller_than_k(self):
        g = path_dag(10)
        est = estimate_closure_sizes(g, k=32)
        # Every closure has at most 10 members < k: estimates are exact.
        for v in range(10):
            assert est[v] == 10 - v

    def test_cycle_rejected(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            estimate_closure_sizes(g)

    @pytest.mark.parametrize("seed", range(3))
    def test_estimates_within_tolerance(self, seed):
        g = citation_dag(600, 4, seed=seed)
        k = 48
        est = estimate_closure_sizes(g, k=k, seed=seed)
        tc = transitive_closure_bits(g)
        big = [(v, tc[v].bit_count()) for v in range(g.n) if tc[v].bit_count() > k]
        assert big, "test graph too shallow to exercise estimation"
        rel_errors = [abs(est[v] - true) / true for v, true in big]
        avg_rel = sum(rel_errors) / len(rel_errors)
        assert avg_rel < 0.30  # 1/sqrt(62) ≈ 0.13; generous bound

    def test_deterministic_per_seed(self):
        g = random_dag(60, 150, seed=1)
        assert estimate_closure_sizes(g, seed=5) == estimate_closure_sizes(g, seed=5)


class TestTotalPairs:
    @pytest.mark.parametrize("seed", range(3))
    def test_total_estimate_tracks_truth(self, seed):
        g = citation_dag(300, 3, seed=seed)
        est, hint = estimate_tc_pairs(g, k=64, seed=seed)
        truth = closure_pairs_count(g)
        assert hint is not None
        assert abs(est - truth) / max(1, truth) < 0.3

    def test_small_k_no_hint(self):
        g = path_dag(5)
        _, hint = estimate_tc_pairs(g, k=2)
        assert hint is None

    def test_edgeless_graph_zero_pairs(self):
        g = DiGraph(10).freeze()
        est, _ = estimate_tc_pairs(g)
        assert est == 0.0
