"""Tests for Hierarchical-Labeling (Algorithm 1) — Theorem 1 and the
running-example structure of the paper's Figure 1."""

import pytest

from repro.core.hierarchical import HierarchicalLabeling
from repro.graph.closure import transitive_closure_bits
from repro.graph.digraph import DiGraph
from repro.graph.generators import citation_dag, path_dag, random_dag, sparse_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


class TestCompleteness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth_exhaustively(self, graph):
        assert_matches_truth(HierarchicalLabeling(graph), graph)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_dags(self, seed):
        g = random_dag(35, 80, seed=seed)
        assert_matches_truth(HierarchicalLabeling(g), g)

    @pytest.mark.parametrize("core_limit", [1, 4, 16, 1000])
    def test_complete_for_any_core_limit(self, core_limit):
        g = random_dag(60, 150, seed=3)
        hl = HierarchicalLabeling(g, core_limit=core_limit)
        assert_matches_truth(hl, g)

    @pytest.mark.parametrize("eps", [1, 2])
    def test_complete_for_both_eps(self, eps):
        g = sparse_dag(50, 0.1, seed=4)
        assert_matches_truth(HierarchicalLabeling(g, eps=eps), g)

    def test_complete_with_level_cap(self):
        g = random_dag(80, 200, seed=5)
        assert_matches_truth(HierarchicalLabeling(g, max_levels=1, core_limit=4), g)


class TestLabelStructure:
    def test_labels_sorted(self):
        g = citation_dag(70, 3, seed=2)
        hl = HierarchicalLabeling(g)
        assert hl.labels.check_sorted()

    def test_every_vertex_labels_itself(self):
        g = random_dag(40, 90, seed=6)
        hl = HierarchicalLabeling(g, core_limit=8)
        for v in range(g.n):
            assert v in hl.labels.lout[v]
            assert v in hl.labels.lin[v]

    def test_hops_are_sound(self):
        """h in Lout(u) means u really reaches h (hops are vertex ids)."""
        g = random_dag(30, 70, seed=7)
        hl = HierarchicalLabeling(g, core_limit=8)
        tc = transitive_closure_bits(g)
        for u in range(g.n):
            for h in hl.labels.lout[u]:
                assert (tc[u] >> h) & 1
            for h in hl.labels.lin[u]:
                assert (tc[h] >> u) & 1

    def test_lower_level_vertices_record_higher_hops(self):
        """Level-i labels only use level-i neighbourhood + backbone labels,
        so every non-self hop of a level-0 vertex is a higher-or-equal
        structure member, never an arbitrary unrelated vertex (soundness
        is checked above; here we check labels are not reflexive-only)."""
        g = random_dag(80, 220, seed=8)
        hl = HierarchicalLabeling(g, core_limit=8)
        multi = sum(1 for v in range(g.n) if len(hl.labels.lout[v]) > 1)
        assert multi > 0

    def test_witness(self):
        g = random_dag(30, 60, seed=9)
        hl = HierarchicalLabeling(g)
        tc = transitive_closure_bits(g)
        for u in range(0, 30, 3):
            for v in range(0, 30, 5):
                w = hl.witness(u, v)
                if (tc[u] >> v) & 1:
                    assert w is not None and (tc[u] >> w) & 1 and (tc[w] >> v) & 1


class TestHierarchyStats:
    def test_stats_fields(self):
        g = random_dag(120, 320, seed=10)
        stats = HierarchicalLabeling(g, core_limit=16).stats()
        assert stats["method"] == "HL"
        assert stats["height"] >= 1
        assert stats["levels"][0] == 120
        assert stats["core_size"] == stats["levels"][-1]

    def test_degenerate_all_core(self):
        g = path_dag(6)
        hl = HierarchicalLabeling(g, core_limit=64)
        assert hl.hierarchy.height == 0
        assert_matches_truth(hl, g)

    def test_empty_graph(self):
        hl = HierarchicalLabeling(DiGraph(0))
        assert hl.index_size_ints() == 0


class TestPaperFigure1Shape:
    """A layered graph in the spirit of Figure 1: decomposition shrinks
    level by level and every level graph stays a DAG."""

    def test_decomposition_shape(self):
        from repro.graph.generators import layered_dag
        from repro.graph.topo import is_dag

        g = layered_dag(6, 10, 2, seed=1)
        hl = HierarchicalLabeling(g, core_limit=8)
        sizes = hl.hierarchy.level_sizes()
        assert sizes[0] == g.n
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        for level in hl.hierarchy.levels:
            assert is_dag(level.backbone_graph)
        assert_matches_truth(hl, g)
