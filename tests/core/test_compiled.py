"""Tests for the build → compile half of the lifecycle.

Every registered method must compile to a graph-free
:class:`~repro.core.compiled.CompiledOracle` whose answers are
bit-identical to the live index's.
"""

import gc

import pytest

from repro.core.base import method_registry
from repro.core.compiled import (
    CompiledClosure,
    CompiledOracle,
    compiled_kind,
    compiled_kinds,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    citation_dag,
    path_dag,
    random_dag,
    sparse_dag,
)

METHODS = sorted(method_registry())

GRAPHS = [
    ("random", lambda: random_dag(60, 150, seed=3)),
    ("sparse", lambda: sparse_dag(80, 0.15, seed=5)),
    ("citation", lambda: citation_dag(70, out_per_vertex=3, seed=7)),
    ("path", lambda: path_dag(12)),
]


def all_pairs(g):
    return [(u, v) for u in range(g.n) for v in range(g.n)]


def assert_graph_free(obj):
    """No DiGraph reachable from a compiled oracle (BFS over referents)."""
    seen = set()
    frontier = [obj]
    while frontier:
        nxt = []
        for x in frontier:
            for ref in gc.get_referents(x):
                if id(ref) in seen or isinstance(ref, (type, type(gc))):
                    continue
                seen.add(id(ref))
                assert not isinstance(ref, DiGraph), (
                    f"{type(obj).__name__} still references a DiGraph"
                )
                if isinstance(ref, (list, tuple, dict)) or hasattr(ref, "__dict__") \
                        or hasattr(ref, "__slots__"):
                    nxt.append(ref)
        frontier = nxt
        if len(seen) > 200_000:  # pragma: no cover - safety valve
            break


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("gname,builder", GRAPHS)
class TestCompileParity:
    def test_answers_bit_identical(self, method, gname, builder):
        g = builder()
        idx = method_registry()[method](g)
        compiled = idx.compile()
        pairs = all_pairs(g)
        want = [idx.query(u, v) for u, v in pairs]
        assert compiled.query_batch(pairs) == want
        # Scalar entry point agrees with the batch one.
        for u, v in pairs[:: max(1, len(pairs) // 64)]:
            assert compiled.query(u, v) == idx.query(u, v)

    def test_graph_free(self, method, gname, builder):
        g = builder()
        compiled = method_registry()[method](g).compile()
        assert_graph_free(compiled)


@pytest.mark.parametrize("method", METHODS)
def test_compiled_reports_stats(method):
    g = random_dag(40, 90, seed=11)
    idx = method_registry()[method](g)
    compiled = idx.compile()
    stats = compiled.stats()
    assert stats["compiled"] is True
    assert stats["n"] == g.n
    assert stats["method"] == idx.short_name
    assert stats["index_size_ints"] == compiled.index_size_ints()
    # Native kinds keep the live index's size accounting.
    if compiled.kind != "closure":
        assert compiled.index_size_ints() == idx.index_size_ints()


class TestClosureFallback:
    def test_guard_refuses_large_graphs(self):
        from repro.core.distribution import DistributionLabeling

        g = random_dag(50, 120, seed=1)
        idx = DistributionLabeling(g)
        with pytest.raises(MemoryError, match="closure"):
            CompiledClosure.from_index(idx, max_closure_n=10)

    def test_reflexive(self):
        from repro.baselines.kreach import KReach

        g = random_dag(30, 60, seed=2)
        compiled = KReach(g).compile()
        assert compiled.kind == "closure"
        for v in range(g.n):
            assert compiled.query(v, v)


class TestRegistry:
    def test_kinds_registered(self):
        kinds = compiled_kinds()
        for kind in ("labels", "grail", "hopdist", "intervals", "chains",
                     "pwah", "online", "scarab", "closure"):
            assert kind in kinds
            assert issubclass(compiled_kind(kind), CompiledOracle)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown artifact kind"):
            compiled_kind("nope")

    def test_every_method_has_a_kind(self):
        g = random_dag(25, 50, seed=4)
        for method, factory in method_registry().items():
            compiled = factory(g).compile()
            assert compiled.kind in compiled_kinds()
            assert compiled.short_name == factory(g).short_name
