"""Tests for label containers and intersection kernels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labels import (
    LabelSet,
    first_common_hop,
    gallop_intersect,
    intersects,
    merge_sorted_unique,
    sorted_intersect,
)

sorted_lists = st.lists(st.integers(0, 200), max_size=40).map(
    lambda xs: sorted(set(xs))
)


class TestSortedIntersect:
    def test_disjoint(self):
        assert not sorted_intersect([1, 3, 5], [2, 4, 6])

    def test_common_element(self):
        assert sorted_intersect([1, 3, 5], [5, 9])

    def test_empty(self):
        assert not sorted_intersect([], [1, 2])
        assert not sorted_intersect([1], [])

    def test_identical(self):
        assert sorted_intersect([7], [7])

    @given(sorted_lists, sorted_lists)
    @settings(max_examples=200)
    def test_matches_set_semantics(self, a, b):
        assert sorted_intersect(a, b) == bool(set(a) & set(b))


class TestGallopIntersect:
    def test_small_into_big(self):
        big = list(range(0, 1000, 2))
        assert gallop_intersect([501, 502], big)
        assert not gallop_intersect([501, 503], big)

    def test_empty_small(self):
        assert not gallop_intersect([], [1, 2, 3])

    @given(sorted_lists, sorted_lists)
    @settings(max_examples=200)
    def test_matches_set_semantics(self, a, b):
        assert gallop_intersect(a, b) == bool(set(a) & set(b))


class TestAdaptiveIntersects:
    @given(sorted_lists, sorted_lists)
    @settings(max_examples=200)
    def test_matches_set_semantics(self, a, b):
        assert intersects(a, b) == bool(set(a) & set(b))

    def test_range_rejection_path(self):
        assert not intersects([1, 2, 3], [10, 11])
        assert not intersects([10, 11], [1, 2, 3])

    def test_skewed_sizes_use_gallop(self):
        small = [999]
        big = list(range(1000))
        assert intersects(small, big)


class TestFirstCommonHop:
    def test_returns_smallest(self):
        assert first_common_hop([1, 4, 9], [2, 4, 9]) == 4

    def test_none_when_disjoint(self):
        assert first_common_hop([1, 2], [3, 4]) is None

    @given(sorted_lists, sorted_lists)
    @settings(max_examples=200)
    def test_matches_min_of_intersection(self, a, b):
        common = set(a) & set(b)
        expected = min(common) if common else None
        assert first_common_hop(a, b) == expected


class TestLabelSet:
    def test_query_uses_intersection(self):
        ls = LabelSet(2)
        ls.lout[0] = [1, 5]
        ls.lin[1] = [5, 9]
        assert ls.query(0, 1)
        assert not ls.query(1, 0)

    def test_witness(self):
        ls = LabelSet(2)
        ls.lout[0] = [3, 7]
        ls.lin[1] = [7]
        assert ls.witness(0, 1) == 7
        assert ls.witness(1, 0) is None

    def test_size_ints(self):
        ls = LabelSet(2)
        ls.lout[0] = [1, 2]
        ls.lin[1] = [3]
        assert ls.size_ints() == 3

    def test_max_and_average(self):
        ls = LabelSet(2)
        ls.lout[0] = [1, 2, 3]
        ls.lin[0] = [1]
        assert ls.max_label_len() == 3
        assert ls.average_label_len() == 2.0

    def test_check_sorted_detects_violation(self):
        ls = LabelSet(1)
        ls.lout[0] = [2, 1]
        assert not ls.check_sorted()

    def test_check_sorted_rejects_duplicates(self):
        ls = LabelSet(1)
        ls.lout[0] = [1, 1]
        assert not ls.check_sorted()

    def test_roundtrip_dict(self):
        ls = LabelSet(2)
        ls.lout[0] = [1]
        ls.lin[1] = [0, 1]
        restored = LabelSet.from_dict(ls.to_dict())
        assert restored.lout == ls.lout
        assert restored.lin == ls.lin

    def test_from_dict_validates_length(self):
        with pytest.raises(ValueError):
            LabelSet.from_dict({"n": 3, "lout": [[]], "lin": [[]]})

    def test_empty_average(self):
        assert LabelSet(0).average_label_len() == 0.0

    def test_repr(self):
        assert "ints=0" in repr(LabelSet(3))


class TestSeal:
    def test_sealed_query_matches_merge_query(self):
        from repro.core.distribution import DistributionLabeling
        from repro.graph.generators import random_dag

        g = random_dag(40, 90, seed=3)
        dl = DistributionLabeling(g)
        labels = dl.labels
        assert labels.lout_sets is not None
        for u in range(g.n):
            for v in range(g.n):
                expected = intersects(labels.lout[u], labels.lin[v])
                assert labels.query(u, v) == expected

    def test_unsealed_query_uses_merge(self):
        ls = LabelSet(2)
        ls.lout[0] = [1, 5]
        ls.lin[1] = [5]
        assert ls.lout_sets is None
        assert ls.query(0, 1)

    def test_seal_returns_self_and_mirrors_large_lout(self):
        ls = LabelSet(2)
        ls.lout[0] = [1, 2, 3, 4]  # above the hybrid set threshold
        assert ls.seal() is ls
        assert ls.lout_sets[0] == frozenset({1, 2, 3, 4})

    def test_seal_keeps_tiny_lout_on_merge_scan_path(self):
        ls = LabelSet(2)
        ls.lout[0] = [5]  # at or below the hybrid threshold: no mirror
        ls.lin[1] = [5, 9]
        ls.seal()
        assert ls.lout_sets[0] is None
        assert ls.query(0, 1)
        assert not ls.query(1, 0)

    def test_seal_set_min_zero_mirrors_everything(self):
        ls = LabelSet(1)
        ls.lout[0] = [7]
        ls.seal(set_min=0)
        assert ls.lout_sets[0] == frozenset({7})

    def test_reseal_after_mutation(self):
        ls = LabelSet(1)
        ls.lout[0] = [1, 2, 3]
        ls.seal()
        ls.lout[0].append(4)
        ls.seal()
        assert 4 in ls.lout_sets[0]

    def test_lin_mutation_stays_consistent_without_reseal(self):
        # The dynamic oracle relies on this: inserting into Lin lists
        # does not invalidate the sealed Lout mirror.
        ls = LabelSet(2)
        ls.lout[0] = [3]
        ls.seal()
        assert not ls.query(0, 1)
        ls.lin[1] = [3]
        assert ls.query(0, 1)

    def test_to_dict_excludes_seal(self):
        ls = LabelSet(1)
        ls.lout[0] = [1]
        ls.seal()
        assert set(ls.to_dict().keys()) == {"n", "lout", "lin"}


class TestMergeSortedUnique:
    def test_merges_and_dedups(self):
        assert merge_sorted_unique([[1, 3], [2, 3], [0]]) == [0, 1, 2, 3]

    def test_empty(self):
        assert merge_sorted_unique([]) == []

    @given(st.lists(sorted_lists, max_size=5))
    @settings(max_examples=100)
    def test_matches_set_union(self, lists):
        expected = sorted(set().union(*map(set, lists))) if lists else []
        assert merge_sorted_unique(lists) == expected
