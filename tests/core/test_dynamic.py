"""Tests for DynamicDL — incremental edge insertion (paper future work)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import DynamicDL, _merge_into
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_dag, random_dag
from repro.graph.traversal import bfs_reaches


def assert_matches_bfs(dyn: DynamicDL, graph: DiGraph) -> None:
    for u in range(graph.n):
        for v in range(graph.n):
            expected = bfs_reaches(graph.out_adj, u, v)
            assert dyn.query(u, v) == expected, f"wrong at ({u},{v})"


def random_insert_sequence(n, base_m, inserts, seed):
    """A base DAG plus a stream of acyclic, novel insertions."""
    rng = random.Random(seed)
    base = random_dag(n, base_m, seed=seed)
    shadow = base.copy()
    stream = []
    tries = 0
    while len(stream) < inserts and tries < inserts * 60:
        tries += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v or shadow.has_edge(u, v):
            continue
        if bfs_reaches(shadow.out_adj, v, u):
            continue  # would create a cycle
        shadow.add_edge(u, v)
        stream.append((u, v))
    return base, stream, shadow


class TestMergeInto:
    def test_merge(self):
        assert _merge_into([1, 3, 5], [2, 3, 6]) == [1, 2, 3, 5, 6]

    def test_empty_sides(self):
        assert _merge_into([], [1]) == [1]
        assert _merge_into([1], []) == [1]


class TestInsertions:
    @pytest.mark.parametrize("seed", range(6))
    def test_stays_correct_through_insert_stream(self, seed):
        base, stream, _ = random_insert_sequence(22, 30, 15, seed)
        dyn = DynamicDL(base, auto_rebuild_factor=0)
        shadow = base.copy()
        assert_matches_bfs(dyn, shadow)
        for u, v in stream:
            dyn.insert_edge(u, v)
            shadow.add_edge(u, v)
            assert_matches_bfs(dyn, shadow)

    def test_insert_returns_whether_reachability_changed(self):
        g = path_dag(4)
        dyn = DynamicDL(g)
        assert dyn.insert_edge(0, 3) is False  # already reachable
        assert dyn.query(0, 3)

    def test_new_edge_connects_components(self):
        g = DiGraph.from_edges(4, [(0, 1), (2, 3)])
        dyn = DynamicDL(g)
        assert not dyn.query(0, 3)
        assert dyn.insert_edge(1, 2) is True
        assert dyn.query(0, 3)
        assert dyn.query(0, 2)
        assert not dyn.query(3, 0)

    def test_cycle_rejected(self):
        dyn = DynamicDL(path_dag(3))
        with pytest.raises(ValueError, match="cycle"):
            dyn.insert_edge(2, 0)

    def test_self_loop_rejected(self):
        dyn = DynamicDL(path_dag(3))
        with pytest.raises(ValueError):
            dyn.insert_edge(1, 1)

    def test_caller_graph_not_mutated(self):
        g = path_dag(4)
        dyn = DynamicDL(g)
        # g is frozen; DynamicDL works on a copy.
        dyn.insert_edge(0, 2)
        assert not g.has_edge(0, 2)
        assert dyn.m == 4

    def test_insert_edges_counts_changes(self):
        g = DiGraph.from_edges(5, [(0, 1), (1, 2)])
        dyn = DynamicDL(g)
        summary = dyn.insert_edges([(0, 2), (2, 3), (3, 4)])
        assert summary["changed"] == 2  # (0,2) was already reachable
        assert summary["edges"] == 3
        assert summary["noop"] == 1
        assert summary["novel"] == 2
        assert summary["duplicate"] == 0

    def test_noop_batch_keeps_label_generation(self):
        g = DiGraph.from_edges(5, [(0, 1), (1, 2), (2, 3)])
        dyn = DynamicDL(g)
        gen = dyn.labels.generation
        summary = dyn.insert_edges([(0, 2), (0, 1), (1, 3)])
        assert summary["novel"] == 0
        assert summary["changed"] == 0
        assert dyn.labels.generation == gen, (
            "a fully no-op batch must not invalidate label snapshots"
        )


class TestRebuild:
    def test_rebuild_restores_minimal_size(self):
        base, stream, shadow = random_insert_sequence(24, 26, 18, seed=3)
        dyn = DynamicDL(base, auto_rebuild_factor=0)
        for u, v in stream:
            dyn.insert_edge(u, v)
        bloated = dyn.index_size_ints()
        dyn.rebuild()
        assert dyn.index_size_ints() <= bloated
        assert_matches_bfs(dyn, shadow)

    def test_auto_rebuild_triggers(self):
        base, stream, shadow = random_insert_sequence(30, 20, 25, seed=5)
        dyn = DynamicDL(base, auto_rebuild_factor=1.01)
        for u, v in stream:
            dyn.insert_edge(u, v)
        # With an aggressive factor, at least one rebuild must have fired.
        assert dyn.stats()["inserts_since_rebuild"] < len(stream)
        assert_matches_bfs(dyn, shadow)

class TestRemovals:
    def test_remove_edge_breaks_reachability(self):
        dyn = DynamicDL(path_dag(4))
        assert dyn.query(0, 3)
        assert dyn.remove_edge(1, 2) is True
        assert not dyn.query(0, 3)
        assert not dyn.query(1, 2)
        assert dyn.query(0, 1)
        assert dyn.query(2, 3)

    def test_redundant_removal_changes_nothing(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        dyn = DynamicDL(g)
        assert dyn.remove_edge(0, 2) is False  # 0->1->2 still live
        assert dyn.query(0, 2)
        assert dyn.stats()["updates"]["removals_redundant"] == 1

    def test_remove_absent_edge_raises(self):
        dyn = DynamicDL(path_dag(3))
        with pytest.raises(ValueError, match="not in the live graph"):
            dyn.remove_edge(0, 2)

    def test_double_remove_raises(self):
        dyn = DynamicDL(path_dag(3))
        dyn.remove_edge(0, 1)
        with pytest.raises(ValueError, match="not in the live graph"):
            dyn.remove_edge(0, 1)

    def test_resurrection_restores_reachability(self):
        dyn = DynamicDL(path_dag(4))
        dyn.remove_edge(1, 2)
        assert not dyn.query(0, 3)
        assert dyn.insert_edge(1, 2) is True
        assert dyn.query(0, 3)
        assert dyn.stats()["tombstones"] == 0
        assert dyn.stats()["updates"]["resurrected"] == 1

    def test_compact_drops_tombstones_and_rebuilds(self):
        dyn = DynamicDL(path_dag(4))
        dyn.remove_edge(1, 2)
        assert dyn.dirt_ratio > 0
        assert dyn.compact() == 1
        assert dyn.dirt_ratio == 0
        assert dyn.m == 2
        assert not dyn.query(0, 3)
        assert dyn.query(0, 1)
        assert dyn.compact() == 0  # idempotent when clean


class TestAccessors:
    def test_counts_and_repr(self):
        dyn = DynamicDL(path_dag(4))
        assert dyn.n == 4
        assert dyn.m == 3
        assert "DynamicDL" in repr(dyn)
        assert dyn.stats()["method"] == "DynamicDL"

    def test_query_batch(self):
        dyn = DynamicDL(path_dag(5))
        pairs = [(0, 4), (4, 0), (2, 2)]
        assert dyn.query_batch(pairs) == [True, False, True]


@st.composite
def insert_scenarios(draw):
    n = draw(st.integers(4, 16))
    seed = draw(st.integers(0, 10_000))
    base_m = draw(st.integers(0, 2 * n))
    inserts = draw(st.integers(1, 10))
    return random_insert_sequence(n, base_m, inserts, seed)


@given(insert_scenarios())
@settings(max_examples=30, deadline=None)
def test_property_insert_stream_correct(scenario):
    base, stream, shadow = scenario
    dyn = DynamicDL(base, auto_rebuild_factor=0)
    for u, v in stream:
        dyn.insert_edge(u, v)
    assert_matches_bfs(dyn, shadow)


class TestEdgeCases:
    """Satellite coverage: label no-ops, the exact bloat threshold, and
    the decremental boundary."""

    def test_already_reachable_insert_is_a_label_noop(self):
        base, stream, _ = random_insert_sequence(20, 30, 6, seed=8)
        dyn = DynamicDL(base, auto_rebuild_factor=0)
        for u, v in stream:
            dyn.insert_edge(u, v)
        # Find a pair that is reachable but not an edge yet.
        target = None
        for u in range(dyn.n):
            for v in range(dyn.n):
                if u != v and dyn.query(u, v) and not dyn.graph.has_edge(u, v):
                    target = (u, v)
                    break
            if target:
                break
        assert target is not None, "scenario produced no transitive pair"
        lin_before = [list(lab) for lab in dyn.labels.lin]
        lout_before = [list(lab) for lab in dyn.labels.lout]
        size_before = dyn.index_size_ints()
        assert dyn.insert_edge(*target) is False
        assert dyn.labels.lin == lin_before
        assert dyn.labels.lout == lout_before
        assert dyn.index_size_ints() == size_before
        assert dyn.m == base.m + len(stream) + 1  # the graph still grew

    def test_auto_rebuild_triggers_exactly_past_the_factor(self):
        # The documented contract: rebuild fires when
        # size > factor * size_at_last_rebuild, strictly.  Measure the
        # exact post-insert size with rebuilds off, then replay at a
        # factor equal to the ratio (no trigger: equality is not >) and
        # just below it (trigger).
        def grown_size(factor):
            g = DiGraph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
            dyn = DynamicDL(g, auto_rebuild_factor=factor)
            base_size = dyn.stats()["size_at_last_rebuild"]
            dyn.insert_edge(1, 2)
            dyn.insert_edge(3, 4)
            return dyn, base_size

        probe, base_size = grown_size(0)
        ratio = probe.index_size_ints() / base_size
        assert ratio > 1  # the flood genuinely bloats this labeling

        at_threshold, _ = grown_size(ratio)
        assert at_threshold.stats()["inserts_since_rebuild"] == 2, (
            "rebuild fired at size == factor * base; the contract is "
            "strictly greater-than"
        )
        just_below, _ = grown_size(ratio - 1e-9)
        assert just_below.stats()["inserts_since_rebuild"] == 0, (
            "rebuild did not fire just past the bloat threshold"
        )

    def test_ghost_cycle_escape_via_compact(self):
        # Removing 1->2 then inserting 2->0 is acyclic in the LIVE
        # graph even though the ghost labels still think 0 reaches 2.
        dyn = DynamicDL(path_dag(3))
        dyn.remove_edge(1, 2)
        assert dyn.insert_edge(2, 0) is True
        assert dyn.query(2, 1)
        assert not dyn.query(0, 2)
        assert dyn.stats()["tombstones"] == 0  # the escape compacted
        # A genuinely live cycle still raises.
        with pytest.raises(ValueError, match="cycle"):
            dyn.insert_edge(1, 0)
