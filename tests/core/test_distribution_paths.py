"""Equivalence tests for the Distribution-Labeling construction paths.

The optimised core has three interchangeable execution strategies —
bigint prune masks, frozenset prune snapshots, and (on dense inputs)
traversal of the transitive reduction.  All of them must produce the
*identical* labeling: the layout work is behavior-invisible by design.
"""

import pytest

from repro.core.distribution import (
    DistributionLabeling,
    _distribute_bits,
    _distribute_sets,
    _should_reduce,
    distribution_labels,
)
from repro.core.labels import LabelSet
from repro.core.order import get_order
from repro.graph import generators as gen
from repro.graph.reduction import reduced_adjacency

from ..conftest import family_cases, FAMILY_IDS


@pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
def test_bits_and_sets_cores_agree(graph):
    order = get_order("degree_product")(graph, 0)
    a = LabelSet(graph.n)
    _distribute_bits(a, order, graph.out_adj, graph.in_adj)
    b = LabelSet(graph.n)
    _distribute_sets(b, order, graph.out_adj, graph.in_adj)
    assert a.lout == b.lout
    assert a.lin == b.lin


@pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
def test_reduction_traversal_preserves_labels(graph):
    order = get_order("degree_product")(graph, 0)
    plain, _ = distribution_labels(graph, order, reduce=False)
    reduced, _ = distribution_labels(graph, order, reduce=True)
    assert plain.lout == reduced.lout
    assert plain.lin == reduced.lin


def test_reduced_adjacency_matches_reduction_module():
    from repro.graph.reduction import transitive_reduction

    g = gen.random_dag(40, 250, seed=5)
    out_red, in_red = reduced_adjacency(g)
    tr = transitive_reduction(g)
    assert out_red == tr.out_adj
    assert in_red == tr.in_adj


def test_should_reduce_rejects_sparse_and_level_graphs():
    assert not _should_reduce(gen.path_dag(50))
    # Layered graphs only have adjacent-level edges: nothing to reduce.
    assert not _should_reduce(gen.layered_dag(6, 30, 10, seed=1))


def test_should_reduce_accepts_dense_random():
    assert _should_reduce(gen.random_dag(300, 6000, seed=2))


def test_dl_reduce_param_is_behavior_invisible():
    g = gen.random_dag(80, 1200, seed=9)
    dl_plain = DistributionLabeling(g, reduce=False)
    dl_red = DistributionLabeling(g, reduce=True)
    assert dl_plain.labels.lout == dl_red.labels.lout
    assert dl_plain.labels.lin == dl_red.labels.lin
    assert dl_plain.index_size_ints() == dl_red.index_size_ints()


def test_dl_labels_sorted_and_masks_attached():
    g = gen.random_dag(60, 200, seed=4)
    dl = DistributionLabeling(g)
    assert dl.labels.check_sorted()
    # Small graphs ride the bigint core, whose bitsets double as masks.
    assert dl.labels._out_masks is not None
    pairs = [(u, v) for u in range(0, 60, 7) for v in range(0, 60, 5)]
    assert dl.query_batch(pairs) == [dl.query(u, v) for u, v in pairs]
