"""Tests for Distribution-Labeling (Algorithm 2).

Covers the paper's Theorem 3 (completeness, exhaustively on small
graphs), Theorem 4 (non-redundancy: removing any hop breaks some pair),
and the implementation invariants (sorted rank-space labels, self-hops).
"""

import pytest

from repro.core.distribution import DistributionLabeling, distribution_labels
from repro.core.labels import intersects
from repro.core.order import degree_product_order
from repro.graph.closure import transitive_closure_bits
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    citation_dag,
    complete_bipartite_dag,
    path_dag,
    random_dag,
    sparse_dag,
    star_dag,
)

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


class TestCompleteness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth_exhaustively(self, graph):
        assert_matches_truth(DistributionLabeling(graph), graph)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_dags(self, seed):
        g = random_dag(35, 80, seed=seed)
        assert_matches_truth(DistributionLabeling(g), g)

    @pytest.mark.parametrize("order", ["degree_product", "degree_sum", "random", "topo_center"])
    def test_complete_under_any_order(self, order):
        g = random_dag(30, 70, seed=3)
        assert_matches_truth(DistributionLabeling(g, order=order), g)

    def test_reflexive_queries(self):
        g = random_dag(20, 40, seed=1)
        dl = DistributionLabeling(g)
        for v in range(20):
            assert dl.query(v, v)


class TestNonRedundancy:
    """Theorem 4: no hop can be removed without losing completeness."""

    @pytest.mark.parametrize("seed", range(5))
    def test_every_hop_is_load_bearing(self, seed):
        g = random_dag(16, 30, seed=seed)
        dl = DistributionLabeling(g)
        labels = dl.labels
        tc = transitive_closure_bits(g)

        def complete() -> bool:
            # Cov(v) in the paper includes reflexive pairs, so the
            # label intersection itself (not the query shortcut) must
            # certify u -> u too; self-hops are load-bearing for that.
            for u in range(g.n):
                for v in range(g.n):
                    reach = bool((tc[u] >> v) & 1)
                    if intersects(labels.lout[u], labels.lin[v]) != reach:
                        return False
            return True

        assert complete()
        for side in (labels.lout, labels.lin):
            for v in range(g.n):
                for i in range(len(side[v])):
                    removed = side[v].pop(i)
                    try:
                        assert not complete(), (
                            f"hop {removed} in label of vertex {v} is redundant"
                        )
                    finally:
                        side[v].insert(i, removed)


class TestLabelInvariants:
    def test_labels_sorted_rank_space(self):
        g = citation_dag(60, 3, seed=2)
        dl = DistributionLabeling(g)
        assert dl.labels.check_sorted()

    def test_every_vertex_labels_itself(self):
        g = random_dag(30, 60, seed=4)
        dl = DistributionLabeling(g)
        for v in range(g.n):
            r = dl.rank[v]
            assert r in dl.labels.lout[v]
            assert r in dl.labels.lin[v]

    def test_hop_membership_is_sound(self):
        """hop h in Lout(u) implies u actually reaches order[h]."""
        g = random_dag(25, 55, seed=5)
        dl = DistributionLabeling(g)
        tc = transitive_closure_bits(g)
        for u in range(g.n):
            for h in dl.labels.lout[u]:
                hop_vertex = dl.order_list[h]
                assert (tc[u] >> hop_vertex) & 1
            for h in dl.labels.lin[u]:
                hop_vertex = dl.order_list[h]
                assert (tc[hop_vertex] >> u) & 1

    def test_order_must_be_permutation(self):
        g = path_dag(4)
        with pytest.raises(ValueError):
            distribution_labels(g, [0, 1, 2, 2])
        with pytest.raises(ValueError):
            distribution_labels(g, [0, 1])


class TestWitness:
    def test_witness_is_real_intermediate(self):
        g = random_dag(30, 70, seed=6)
        dl = DistributionLabeling(g)
        tc = transitive_closure_bits(g)
        for u in range(0, 30, 3):
            for v in range(0, 30, 4):
                w = dl.witness(u, v)
                if (tc[u] >> v) & 1:
                    assert w is not None
                    assert (tc[u] >> w) & 1 and (tc[w] >> v) & 1
                else:
                    assert w is None


class TestShapes:
    def test_bipartite_labels_near_optimal(self):
        # K(a,b) has no middle vertex, so any hop covers at most
        # max(a, b) pairs; the information-theoretic floor is about
        # a*b label entries plus self-hops.  DL should land on it.
        g = complete_bipartite_dag(10, 10)
        dl = DistributionLabeling(g)
        assert dl.index_size_ints() <= 10 * 10 + 2 * g.n

    def test_star_centre_is_top_hop(self):
        g = star_dag(12, out=True)
        dl = DistributionLabeling(g)
        assert dl.order_list[0] == 0

    def test_path_labels_subquadratic(self):
        n = 256
        dl = DistributionLabeling(path_dag(n))
        assert dl.index_size_ints() < n * 24  # far below n²/2 closure pairs

    def test_empty_and_single(self):
        assert DistributionLabeling(DiGraph(0)).index_size_ints() == 0
        dl = DistributionLabeling(DiGraph(1))
        assert dl.query(0, 0)

    def test_stats_fields(self):
        g = sparse_dag(40, 0.1, seed=7)
        stats = DistributionLabeling(g).stats()
        assert stats["method"] == "DL"
        assert stats["index_size_ints"] > 0
        assert "max_label_len" in stats and "avg_label_len" in stats
