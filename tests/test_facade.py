"""Tests for the Reachability facade over cyclic digraphs."""

import pytest

from repro import Reachability
from repro.graph.digraph import DiGraph
from repro.graph.generators import powerlaw_digraph
from repro.graph.traversal import bfs_reaches


def assert_facade_matches_bfs(r, graph):
    for u in range(graph.n):
        for v in range(graph.n):
            assert r.query(u, v) == bfs_reaches(graph.out_adj, u, v)


class TestCyclicGraphs:
    @pytest.mark.parametrize("method", ["DL", "HL", "PT", "INT", "GL", "PW8"])
    def test_matches_bfs_on_cyclic(self, method):
        g = powerlaw_digraph(60, 170, seed=1)
        r = Reachability(g, method=method)
        assert_facade_matches_bfs(r, g)

    def test_same_scc_pairs_true(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        r = Reachability(g)
        for u in range(3):
            for v in range(3):
                assert r.query(u, v)

    def test_same_scc_helper(self):
        g = DiGraph.from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3)])
        r = Reachability(g)
        assert r.same_scc(0, 1)
        assert not r.same_scc(1, 2)

    def test_query_batch(self):
        g = powerlaw_digraph(40, 110, seed=2)
        r = Reachability(g)
        pairs = [(u, v) for u in range(0, 40, 5) for v in range(0, 40, 7)]
        assert r.query_batch(pairs) == [r.query(u, v) for u, v in pairs]


class TestMethodsAndParams:
    def test_callable_method(self):
        from repro.core.distribution import DistributionLabeling

        g = powerlaw_digraph(30, 80, seed=3)
        r = Reachability(g, method=DistributionLabeling)
        assert_facade_matches_bfs(r, g)

    def test_params_forwarded(self):
        g = powerlaw_digraph(30, 80, seed=4)
        r = Reachability(g, method="DL", order="degree_sum")
        assert r.index.params == {"order": "degree_sum"}

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            Reachability(DiGraph(1), method="nope")


class TestPathCertificates:
    def test_path_is_real(self):
        g = powerlaw_digraph(60, 170, seed=5)
        r = Reachability(g)
        found = 0
        for u in range(0, g.n, 3):
            for v in range(0, g.n, 4):
                p = r.path(u, v)
                if p is None:
                    assert not r.query(u, v)
                    continue
                found += 1
                assert p[0] == u and p[-1] == v
                for a, b in zip(p, p[1:]):
                    assert g.has_edge(a, b)
        assert found > 0

    def test_reflexive_path(self):
        g = DiGraph.from_edges(2, [(0, 1)])
        assert Reachability(g).path(1, 1) == [1]

    def test_unreachable_returns_none(self):
        g = DiGraph.from_edges(2, [(0, 1)])
        assert Reachability(g).path(1, 0) is None

    def test_path_through_scc(self):
        g = DiGraph.from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3)])
        p = Reachability(g).path(0, 3)
        assert p[0] == 0 and p[-1] == 3
        for a, b in zip(p, p[1:]):
            assert g.has_edge(a, b)


class TestAnalytics:
    def test_reachable_count_from(self):
        g = DiGraph.from_edges(5, [(0, 1), (1, 0), (1, 2), (3, 4)])
        r = Reachability(g)
        assert r.reachable_count_from(0) == 3  # {0,1} SCC + 2
        assert r.reachable_count_from(3) == 2
        assert r.reachable_count_from(2) == 1

    def test_stats(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 0), (1, 2)])
        stats = Reachability(g).stats()
        assert stats["original_n"] == 3
        assert stats["dag_n"] == 2
        assert stats["index"]["method"] == "DL"

    def test_repr(self):
        g = DiGraph.from_edges(2, [(0, 1)])
        assert "method=DL" in repr(Reachability(g))

    def test_dag_input_passthrough(self):
        g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        r = Reachability(g)
        assert r.condensation.dag.n == 4
        assert_facade_matches_bfs(r, g)


class TestServeLifecycle:
    """is_serving, the serve-mode path() error, and Reachability.serve()."""

    @staticmethod
    def _cyclic_graph():
        return DiGraph.from_edges(
            6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]
        )

    def test_is_serving_false_on_build_side(self):
        r = Reachability(self._cyclic_graph())
        assert r.is_serving is False
        assert r.path(0, 5) is not None  # graph helpers available

    def test_is_serving_true_after_artifact_round_trip(self, tmp_path):
        path = str(tmp_path / "p.rpro")
        Reachability(self._cyclic_graph()).save(path)
        served = Reachability.load(path)
        assert served.is_serving is True

    def test_serve_mode_path_error_names_the_workflow(self, tmp_path):
        import pytest

        path = str(tmp_path / "p.rpro")
        Reachability(self._cyclic_graph()).save(path)
        served = Reachability.load(path)
        with pytest.raises(RuntimeError) as exc_info:
            served.path(0, 5)
        message = str(exc_info.value)
        # The error must teach the fix: name the serve mode, the
        # artifact workflow it came from, and the graph-backed
        # alternative.
        assert "is_serving" in message
        assert "from_artifact" in message
        assert "build -> compile -> serve" in message
        assert "Reachability(graph, method)" in message

    def test_serve_in_process_matches_local_answers(self):
        from repro.server import ReachClient

        g = self._cyclic_graph()
        r = Reachability(g)
        server = r.serve()  # workers=0, ephemeral port
        try:
            pairs = [(u, v) for u in range(g.n) for v in range(g.n)]
            expected = [bool(a) for a in r.query_batch(pairs)]
            with ReachClient(*server.address) as client:
                assert client.query_batch(pairs) == expected
        finally:
            server.close()

    def test_serve_with_workers_saves_and_cleans_temp_artifact(self):
        import os

        from repro.server import ReachClient

        g = self._cyclic_graph()
        r = Reachability(g)
        server = r.serve(workers=1)
        temp_paths = list(server.cleanup_paths)
        try:
            assert len(temp_paths) == 1 and os.path.exists(temp_paths[0])
            pairs = [(0, 5), (5, 0), (1, 0), (3, 2)]
            with ReachClient(*server.address) as client:
                assert client.query_batch(pairs) == [True, False, True, False]
        finally:
            server.close()
        assert not os.path.exists(temp_paths[0])

    def test_serve_mode_facade_reuses_its_artifact(self, tmp_path):
        from repro.server import ReachClient

        g = self._cyclic_graph()
        path = str(tmp_path / "p.rpro")
        r = Reachability(g)
        r.save(path)
        served = Reachability.load(path)
        server = served.serve(workers=1)
        try:
            assert server.cleanup_paths == []  # no temp file needed
            assert server.service.artifact_path == path
            with ReachClient(*server.address) as client:
                assert client.query(0, 5) is True
        finally:
            server.close()

    def test_serve_mode_with_deleted_artifact_raises_clearly(self, tmp_path):
        import os

        import pytest

        path = str(tmp_path / "p.rpro")
        Reachability(self._cyclic_graph()).save(path)
        served = Reachability.load(path, mmap=False)  # no mapping held
        os.unlink(path)
        with pytest.raises(FileNotFoundError, match="no longer exists"):
            served.serve(workers=1)


class TestServeRestartAfterClose:
    """Regression: Reachability.serve() after close() restarts cleanly
    in every mode (satellite).  The one deliberate exception — a second
    *live* serve while the first is still up — raises a clear error
    (covered in tests/live/test_live_serving.py)."""

    @staticmethod
    def _graph():
        return DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])

    def _roundtrip(self, server):
        from repro.server import ReachClient

        try:
            with ReachClient(*server.address) as client:
                assert client.query(0, 3) is True
                assert client.query(3, 0) is False
        finally:
            server.close()

    def test_build_mode_in_process_restarts(self):
        r = Reachability(self._graph(), "DL")
        self._roundtrip(r.serve())
        self._roundtrip(r.serve())

    def test_build_mode_worker_pool_restarts(self):
        # The first close() deletes the temp artifact its pool mapped;
        # a re-serve must save a fresh one, not trip over the old path.
        r = Reachability(self._graph(), "DL")
        self._roundtrip(r.serve(workers=2))
        self._roundtrip(r.serve(workers=2))

    def test_serve_mode_facade_restarts(self, tmp_path):
        path = str(tmp_path / "p.rpro")
        Reachability(self._graph(), "DL").save(path)
        served = Reachability.load(path)
        self._roundtrip(served.serve(workers=2))
        self._roundtrip(served.serve(workers=2))

    def test_live_serve_restarts_and_keeps_updates(self):
        import pytest

        g = DiGraph.from_edges(4, [(0, 1), (2, 3)])
        r = Reachability(g, "DL")
        server = r.serve(live=True)
        r.add_edge(1, 2)
        server.close()
        # Updates applied while live survive into the next serve.
        server2 = r.serve(live=True)
        from repro.server import ReachClient

        try:
            with ReachClient(*server2.address) as client:
                assert client.query(0, 3) is True
        finally:
            server2.close()
        # ...and a dead live server refuses further updates clearly.
        with pytest.raises(RuntimeError, match="serve\\(live=True\\)"):
            r.add_edge(0, 2)
