"""Tests for the SCARAB framework and GL*/PT* variants."""

import pytest

from repro.baselines.grail import Grail
from repro.baselines.pathtree import PathTree
from repro.core.distribution import DistributionLabeling
from repro.scarab.framework import Scarab, ScarabGrail, ScarabPathTree
from repro.graph.generators import random_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


class TestScarabCorrectness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_scarab_grail_matches_truth(self, graph):
        assert_matches_truth(ScarabGrail(graph), graph)

    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_scarab_pathtree_matches_truth(self, graph):
        assert_matches_truth(ScarabPathTree(graph), graph)

    @pytest.mark.parametrize("seed", range(4))
    def test_scarab_with_dl_inner(self, seed):
        g = random_dag(35, 85, seed=seed)
        idx = Scarab(g, inner_factory=lambda bg: DistributionLabeling(bg))
        assert_matches_truth(idx, g)

    @pytest.mark.parametrize("eps", [1, 2])
    def test_both_eps_values(self, eps):
        g = random_dag(40, 100, seed=5)
        idx = Scarab(g, inner_factory=lambda bg: Grail(bg), eps=eps)
        assert_matches_truth(idx, g)


class TestScarabStructure:
    def test_requires_inner_factory(self):
        g = random_dag(10, 20, seed=1)
        with pytest.raises(ValueError):
            Scarab(g)

    def test_backbone_smaller_than_graph(self):
        g = random_dag(150, 400, seed=2)
        idx = ScarabGrail(g)
        assert len(idx.level.backbone_vertices) < g.n

    def test_inner_index_on_backbone_only(self):
        g = random_dag(120, 300, seed=3)
        idx = ScarabPathTree(g)
        assert isinstance(idx.inner, PathTree)
        assert idx.inner.graph.n == len(idx.level.backbone_vertices)

    def test_short_names(self):
        g = random_dag(30, 60, seed=4)
        assert ScarabGrail(g).short_name == "GL*"
        assert ScarabPathTree(g).short_name == "PT*"

    def test_stats_include_backbone_info(self):
        g = random_dag(60, 150, seed=5)
        stats = ScarabGrail(g).stats()
        assert "backbone_vertices" in stats
        assert stats["inner"] == "GL"
