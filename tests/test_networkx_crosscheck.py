"""Cross-validation of the graph substrate against networkx.

Our own BFS serves as ground truth everywhere else; these tests close
the loop by validating the substrate itself (SCC, condensation,
topological machinery, closure, transitive reduction) against an
independent, widely-trusted implementation.
"""

import networkx as nx
import pytest

from repro.graph.closure import bitset_to_list, transitive_closure_bits
from repro.graph.digraph import DiGraph
from repro.graph.reduction import transitive_reduction
from repro.graph.scc import condense, strongly_connected_components
from repro.graph.topo import topological_levels, topological_order
from repro.graph.generators import powerlaw_digraph, random_dag


def to_nx(graph: DiGraph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edges())
    return g


SEEDS = range(5)


class TestSccAgainstNetworkx:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_scc_partitions_match(self, seed):
        g = powerlaw_digraph(120, 380, seed=seed)
        comp = strongly_connected_components(g.out_adj, g.n)
        ours = {}
        for v, c in enumerate(comp):
            ours.setdefault(c, set()).add(v)
        theirs = {frozenset(s) for s in nx.strongly_connected_components(to_nx(g))}
        assert {frozenset(s) for s in ours.values()} == theirs

    @pytest.mark.parametrize("seed", SEEDS)
    def test_condensation_sizes_match(self, seed):
        g = powerlaw_digraph(100, 320, seed=seed)
        c = condense(g)
        nxc = nx.condensation(to_nx(g))
        assert c.dag.n == nxc.number_of_nodes()
        assert c.dag.m == nxc.number_of_edges()


class TestTopologyAgainstNetworkx:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_topological_order_valid_per_networkx(self, seed):
        g = random_dag(80, 200, seed=seed)
        order = topological_order(g)
        # networkx validates orderings via lexicographical checks; we
        # simply verify edge direction against its DAG view.
        pos = {v: i for i, v in enumerate(order)}
        for u, v in to_nx(g).edges():
            assert pos[u] < pos[v]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_levels_match_longest_paths(self, seed):
        g = random_dag(60, 150, seed=seed)
        levels = topological_levels(g)
        nxg = to_nx(g)
        for v in range(g.n):
            preds = list(nxg.predecessors(v))
            expected = 0 if not preds else 1 + max(levels[p] for p in preds)
            assert levels[v] == expected


class TestClosureAgainstNetworkx:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_descendants_match(self, seed):
        g = random_dag(60, 150, seed=seed)
        tc = transitive_closure_bits(g)
        nxg = to_nx(g)
        for v in range(g.n):
            ours = set(bitset_to_list(tc[v]))
            theirs = nx.descendants(nxg, v) | {v}
            assert ours == theirs

    @pytest.mark.parametrize("seed", SEEDS)
    def test_transitive_reduction_matches(self, seed):
        g = random_dag(40, 160, seed=seed)
        ours = set(transitive_reduction(g).edges())
        theirs = set(nx.transitive_reduction(to_nx(g)).edges())
        assert ours == theirs


class TestOraclesAgainstNetworkx:
    @pytest.mark.parametrize("method", ["DL", "HL", "DUAL", "TREE"])
    def test_oracle_matches_networkx_reachability(self, method):
        from repro.core.base import get_method

        g = random_dag(45, 110, seed=9)
        idx = get_method(method)(g)
        nxg = to_nx(g)
        reach = {v: nx.descendants(nxg, v) | {v} for v in range(g.n)}
        for u in range(g.n):
            for v in range(g.n):
                assert idx.query(u, v) == (v in reach[u])
