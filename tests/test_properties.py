"""Hypothesis property tests over randomly generated DAGs.

The DAG strategy draws a vertex count and an arbitrary pair set, then
orients every pair along a drawn permutation — every DAG shape on up to
~24 vertices is reachable.  Oracles are compared against the bitset
closure on all pairs; structural invariants (sorted labels, hierarchy
shrinkage, non-redundancy) are asserted alongside.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import get_method
from repro.core.distribution import DistributionLabeling
from repro.core.hierarchical import HierarchicalLabeling
from repro.graph.closure import transitive_closure_bits
from repro.graph.digraph import DiGraph

from .conftest import assert_matches_truth


@st.composite
def dags(draw, max_n=24, max_m=60):
    n = draw(st.integers(1, max_n))
    perm = draw(st.permutations(range(n)))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_m,
        )
    )
    g = DiGraph(n)
    pos = {v: i for i, v in enumerate(perm)}
    for a, b in pairs:
        if a == b:
            continue
        u, v = (a, b) if pos[a] < pos[b] else (b, a)
        if not g.has_edge(u, v):
            g.add_edge(u, v)
    return g.freeze()


ORACLES = ["DL", "HL", "TF", "PT", "INT", "PW8", "KR", "2HOP", "PL", "GL", "GL*", "CH", "TREE", "DUAL", "3HOP"]


@given(dags())
@settings(max_examples=40, deadline=None)
def test_dl_complete_on_arbitrary_dags(g):
    assert_matches_truth(DistributionLabeling(g), g)


@given(dags())
@settings(max_examples=40, deadline=None)
def test_hl_complete_on_arbitrary_dags(g):
    assert_matches_truth(HierarchicalLabeling(g), g)


@given(dags(max_n=16, max_m=36), st.sampled_from(ORACLES))
@settings(max_examples=60, deadline=None)
def test_any_oracle_complete(g, method):
    assert_matches_truth(get_method(method)(g), g)


@given(dags())
@settings(max_examples=40, deadline=None)
def test_dl_labels_sorted_and_self_labeled(g):
    dl = DistributionLabeling(g)
    assert dl.labels.check_sorted()
    for v in range(g.n):
        assert dl.rank[v] in dl.labels.lout[v]
        assert dl.rank[v] in dl.labels.lin[v]


@given(dags())
@settings(max_examples=40, deadline=None)
def test_dl_hops_sound(g):
    dl = DistributionLabeling(g)
    tc = transitive_closure_bits(g)
    for u in range(g.n):
        for h in dl.labels.lout[u]:
            assert (tc[u] >> dl.order_list[h]) & 1
        for h in dl.labels.lin[u]:
            assert (tc[dl.order_list[h]] >> u) & 1


@given(dags(max_n=12, max_m=26))
@settings(max_examples=25, deadline=None)
def test_dl_non_redundant(g):
    """Theorem 4, property-tested: every stored hop covers some pair."""
    from repro.core.labels import intersects

    dl = DistributionLabeling(g)
    labels = dl.labels
    tc = transitive_closure_bits(g)

    def complete():
        # Reflexive pairs included: Cov(v) covers (v, v), so the
        # self-hop in each label is load-bearing too.
        for u in range(g.n):
            for v in range(g.n):
                reach = bool((tc[u] >> v) & 1)
                if intersects(labels.lout[u], labels.lin[v]) != reach:
                    return False
        return True

    assert complete()
    for side in (labels.lout, labels.lin):
        for v in range(g.n):
            for i in range(len(side[v])):
                removed = side[v].pop(i)
                broke = not complete()
                side[v].insert(i, removed)
                assert broke


@given(dags())
@settings(max_examples=40, deadline=None)
def test_hierarchy_levels_shrink(g):
    hl = HierarchicalLabeling(g, core_limit=4)
    sizes = hl.hierarchy.level_sizes()
    assert sizes[0] == g.n
    assert all(a > b for a, b in zip(sizes, sizes[1:]))


@given(dags())
@settings(max_examples=40, deadline=None)
def test_facade_equals_dag_oracle_on_dags(g):
    from repro import Reachability

    r = Reachability(g, method="DL")
    dl = DistributionLabeling(g)
    for u in range(g.n):
        for v in range(g.n):
            assert r.query(u, v) == dl.query(u, v)
