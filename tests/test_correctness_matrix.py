"""The cross-method correctness matrix.

Every registered method × every graph family, checked exhaustively
against the bitset transitive closure.  This is the repository's
strongest single guarantee: all fifteen indices implement the same
abstract function.
"""

import pytest

from repro.core.base import get_method

from .conftest import assert_matches_truth, family_cases, FAMILY_IDS

ALL_METHODS = [
    "BFS", "DFS", "GL", "GL*", "PT", "PT*", "KR", "PW8", "INT",
    "2HOP", "PL", "TF", "HL", "DL", "CH", "TREE", "DUAL", "3HOP", "ISL",
]


@pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
@pytest.mark.parametrize("method", ALL_METHODS)
def test_method_agrees_with_closure(method, graph):
    index = get_method(method)(graph)
    assert_matches_truth(index, graph)
