"""Property: answers during a hot swap are batch-atomic in the epoch.

Every batch is answered under exactly one epoch lease, and a request is
never split across batches — so a multi-pair request observed by a
client must be consistent with *either* the old or the new artifact,
never a mix.  The test makes any mix detectable: version A is two
disconnected chains, version B joins them, and every request asks only
cross-chain pairs — all-False under A, all-True under B.  Publishers
flip between the two versions as fast as they can while worker threads
hammer the service with coalescing windows enabled; one mixed answer
vector fails the property.
"""

import random
import threading

from repro.facade import Reachability
from repro.graph.digraph import DiGraph
from repro.live import LiveIndex, VersionedArtifactStore
from repro.server.service import QueryService

CHAIN = 12  # vertices per chain


def build_versions(tmp_path):
    n = 2 * CHAIN
    edges_a = [(i, i + 1) for i in range(CHAIN - 1)]
    edges_a += [(CHAIN + i, CHAIN + i + 1) for i in range(CHAIN - 1)]
    split = DiGraph.from_edges(n, list(edges_a))
    joined = DiGraph.from_edges(n, list(edges_a) + [(CHAIN - 1, CHAIN)])
    path_a = str(tmp_path / "split.rpro")
    path_b = str(tmp_path / "joined.rpro")
    Reachability(split, "DL").save(path_a)
    Reachability(joined, "DL").save(path_b)
    return path_a, path_b


def cross_pairs(rng, count):
    """Pairs from the first chain into the second (False/True selectors)."""
    return [
        (rng.randrange(CHAIN), CHAIN + rng.randrange(CHAIN)) for _ in range(count)
    ]


def test_swap_answers_are_batch_atomic(tmp_path):
    path_a, path_b = build_versions(tmp_path)
    store = VersionedArtifactStore()
    store.publish(path_a)
    # Cache off: a cached bit is epoch-correct by construction (keys
    # carry the epoch); the property under test is the *batch* path.
    service = QueryService(store=store, owns_store=True, window_s=0.0005,
                           cache_size=0).start()
    violations = []
    answered = [0]
    stop = threading.Event()

    def query_worker(seed: int) -> None:
        rng = random.Random(seed)
        while not stop.is_set():
            pairs = cross_pairs(rng, rng.randrange(2, 9))
            answers = service.query_pairs(pairs)
            answered[0] += len(answers)
            if any(answers) and not all(answers):
                violations.append(list(answers))
                return

    def publisher() -> None:
        flip = False
        while not stop.is_set():
            store.publish(path_b if flip else path_a)
            flip = not flip

    workers = [
        threading.Thread(target=query_worker, args=(s,)) for s in range(6)
    ]
    pub = threading.Thread(target=publisher)
    for t in workers:
        t.start()
    pub.start()
    try:
        import time

        time.sleep(1.5)
    finally:
        stop.set()
        for t in workers:
            t.join(timeout=10)
        pub.join(timeout=10)
        service.close()
    assert not violations, f"mixed-epoch batch answers: {violations[:3]}"
    assert answered[0] > 1000  # the hammer actually ran
    assert store.stats()["publishes"] > 10  # and swaps really interleaved


def test_swap_answers_are_batch_atomic_through_live_updates(tmp_path):
    """Same property along the *update* path: inserts that join the
    chains publish mid-load; every request is all-old or all-new."""
    n = 2 * CHAIN
    edges = [(i, i + 1) for i in range(CHAIN - 1)]
    edges += [(CHAIN + i, CHAIN + i + 1) for i in range(CHAIN - 1)]
    from repro.live import IncrementalCompiler

    live = LiveIndex(IncrementalCompiler(DiGraph.from_edges(n, edges)))
    service = QueryService(live=live, window_s=0.0005, cache_size=0).start()
    violations = []
    stop = threading.Event()

    def query_worker(seed: int) -> None:
        rng = random.Random(seed)
        while not stop.is_set():
            answers = service.query_pairs(cross_pairs(rng, rng.randrange(2, 9)))
            if any(answers) and not all(answers):
                violations.append(list(answers))
                return

    workers = [
        threading.Thread(target=query_worker, args=(s,)) for s in range(4)
    ]
    for t in workers:
        t.start()
    try:
        import time

        time.sleep(0.1)
        live.apply_updates([(CHAIN - 1, CHAIN)])  # join the chains
        time.sleep(0.2)
    finally:
        stop.set()
        for t in workers:
            t.join(timeout=10)
        service.close()
        live.close()
    assert not violations, f"mixed-epoch batch answers: {violations[:3]}"
