"""Live serving end-to-end: epoch plumbing, wire ops, hot swap, watcher."""

import os
import random
import threading
import time

import pytest

from repro.facade import Reachability
from repro.graph.digraph import DiGraph
from repro.graph.generators import novel_acyclic_edges, path_dag, random_dag
from repro.live import ArtifactWatcher, IncrementalCompiler, LiveIndex, VersionedArtifactStore
from repro.server import ReachClient, run_load
from repro.server.service import QueryService, ReachServer, serve_artifact


@pytest.fixture()
def live_index():
    g = random_dag(150, 380, seed=21)
    li = LiveIndex(IncrementalCompiler(g))
    yield g, li
    li.close()


class TestQueryServiceStoreMode:
    def test_store_mode_serves_and_reports_epoch(self, live_index):
        _g, li = live_index
        with QueryService(live=li, window_s=0) as service:
            assert service.current_epoch == 1
            assert service.stats()["epoch"] == 1
            assert isinstance(service.query(0, 149), bool)

    def test_epoch_advances_and_answers_follow(self, live_index):
        g, li = live_index
        with QueryService(live=li, window_s=0) as service:
            edges, shadow = novel_acyclic_edges(g, 10, seed=22)
            li.apply_updates(edges)
            assert service.current_epoch == 2
            fresh = Reachability(shadow, "DL")
            rng = random.Random(23)
            pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(800)]
            assert service.query_pairs(pairs) == fresh.query_batch(pairs)

    def test_cache_entries_do_not_leak_across_epochs(self):
        # Two chains; the update joins them.  A cached False from epoch
        # 1 must not answer the same pair at epoch 2 (and no flush is
        # ever issued — keys simply carry the epoch).
        g = DiGraph.from_edges(4, [(0, 1), (2, 3)])
        li = LiveIndex(IncrementalCompiler(g))
        try:
            with QueryService(live=li, window_s=0, cache_size=1024) as service:
                assert service.query(0, 3) is False
                assert service.query(0, 3) is False  # now cached
                assert service.cache.stats()["hits"] >= 1
                li.apply_updates([(1, 2)])
                assert service.query(0, 3) is True
        finally:
            li.close()

    def test_bound_follows_the_epoch(self, tmp_path, live_index):
        # Swapping in an artifact over a *smaller* graph must retighten
        # request validation to the new bound.
        _g, li = live_index
        small = str(tmp_path / "small.rpro")
        Reachability(path_dag(10), "DL").save(small)
        with QueryService(live=li, window_s=0) as service:
            assert service.query(0, 149) in (True, False)
            li.swap_artifact(small)
            with pytest.raises(ValueError, match="out of range"):
                service.query_pairs([(0, 149)])
            assert service.query(0, 9) is True


class TestWorkerPoolEpochs:
    def test_workers_pick_up_new_epoch(self, live_index):
        g, li = live_index
        service = QueryService(live=li, workers=2, window_s=0)
        try:
            service.start()
            before = service.query(0, 149)
            assert isinstance(before, bool)
            edges, shadow = novel_acyclic_edges(g, 8, seed=31)
            li.apply_updates(edges)
            fresh = Reachability(shadow, "DL")
            rng = random.Random(32)
            pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(600)]
            assert service.query_pairs(pairs) == fresh.query_batch(pairs)
            assert service.stats()["pool"]["worker_errors"] == 0
        finally:
            service.close()

    def test_epoch_file_survives_until_workers_answered(self, live_index):
        # The lease held per dispatched batch keeps each epoch's file
        # alive for the workers even though the store owns (and later
        # unlinks) it; many interleaved updates must never produce a
        # worker error from a vanished file.
        g, li = live_index
        service = QueryService(live=li, workers=2, window_s=0)
        try:
            service.start()
            rng = random.Random(33)
            for _ in range(5):
                edges, _ = novel_acyclic_edges(li.compiler.original, 2, seed=rng.randrange(10**6))
                if edges:
                    li.apply_updates(edges)
                pairs = [
                    (rng.randrange(g.n), rng.randrange(g.n)) for _ in range(50)
                ]
                service.query_pairs(pairs)
            assert service.stats()["pool"]["worker_errors"] == 0
        finally:
            service.close()


class TestWireProtocolOps:
    def test_epoch_update_and_stats_ops(self, live_index):
        g, li = live_index
        service = QueryService(live=li).start()
        server = ReachServer(service, owns_service=True).start()
        try:
            with ReachClient(*server.address) as client:
                assert client.epoch() == 1
                edges, shadow = novel_acyclic_edges(g, 6, seed=41)
                summary = client.update(edges)
                assert summary["epoch"] == 2
                assert summary["edges"] == len(edges)
                assert client.epoch() == 2
                stats = client.stats()
                assert stats["epoch"] == 2
                assert stats["live"]["store"]["epoch"] == 2
                fresh = Reachability(shadow, "DL")
                rng = random.Random(42)
                pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(500)]
                assert client.query_batch(pairs) == fresh.query_batch(pairs)
        finally:
            server.close()

    def test_update_on_static_server_is_a_clean_error(self, tmp_path):
        path = str(tmp_path / "static.rpro")
        Reachability(path_dag(20), "DL").save(path)
        server = serve_artifact(path)
        try:
            with ReachClient(*server.address) as client:
                assert client.epoch() == 0  # static serving
                with pytest.raises(RuntimeError, match="no update path"):
                    client.update([(0, 5)])
                # The connection survives the refused update.
                assert client.query(0, 19) is True
        finally:
            server.close()

    def test_bad_update_edges_return_error_not_disconnect(self, live_index):
        _g, li = live_index
        service = QueryService(live=li).start()
        server = ReachServer(service, owns_service=True).start()
        try:
            with ReachClient(*server.address) as client:
                with pytest.raises(RuntimeError, match="out of range"):
                    client.update([(0, 10**6)])
                assert client.epoch() == 1  # nothing published
                assert client.ping() >= 0.0
        finally:
            server.close()


class TestHotSwapUnderLoad:
    def test_swap_mid_load_drops_nothing_and_lands_on_v2(self, tmp_path):
        g1 = random_dag(300, 700, seed=51)
        edges, g2 = novel_acyclic_edges(g1, 30, seed=52)
        r1 = Reachability(g1, "DL")
        path = str(tmp_path / "live.rpro")
        r1.save(path)
        v2_path = str(tmp_path / "v2.rpro")
        Reachability(g2.copy(), "DL").save(v2_path)

        store = VersionedArtifactStore()
        store.publish(path)
        service = QueryService(store=store, owns_store=True).start()
        server = ReachServer(service, owns_service=True).start()
        try:
            rng = random.Random(53)
            pairs = [(rng.randrange(300), rng.randrange(300)) for _ in range(8000)]

            swapped = threading.Event()

            def swap_midway():
                time.sleep(0.02)
                store.publish(v2_path)
                swapped.set()

            t = threading.Thread(target=swap_midway)
            t.start()
            report = run_load(*server.address, pairs, connections=4, pipeline=32)
            t.join()
            assert swapped.is_set()
            assert report.errors == 0, report.first_error
            assert len(report.answers) == len(pairs)
            # Post-swap, answers are pure v2.
            fresh = Reachability(g2.copy(), "DL")
            with ReachClient(*server.address) as client:
                sample = pairs[:2000]
                assert client.query_batch(sample) == fresh.query_batch(sample)
            assert store.stats()["epoch"] == 2
        finally:
            server.close()


class TestArtifactWatcher:
    def test_watcher_publishes_on_atomic_replace(self, tmp_path):
        g1 = path_dag(30)
        g2 = random_dag(30, 80, seed=61)
        path = str(tmp_path / "watched.rpro")
        Reachability(g1, "DL").save(path)
        store = VersionedArtifactStore()
        watcher = ArtifactWatcher(store, path, interval_s=0.05)
        try:
            assert watcher.publish_current() == 1
            assert watcher.poll_once() is None  # unchanged: no republish
            tmp = str(tmp_path / "incoming.rpro")
            Reachability(g2, "DL").save(tmp)
            os.replace(tmp, path)
            assert watcher.poll_once() == 2
            assert store.current_epoch == 2
            assert watcher.poll_once() is None  # stable again
        finally:
            watcher.close()
            store.close()

    def test_watcher_serves_snapshots_not_the_watched_path(self, tmp_path):
        # Every epoch must be a private snapshot: the watched path
        # aliases versions, and an epoch-aware worker re-opening it
        # after a second replacement would map content the parent never
        # leased.
        path = str(tmp_path / "watched.rpro")
        Reachability(path_dag(25), "DL").save(path)
        store = VersionedArtifactStore()
        watcher = ArtifactWatcher(store, path, interval_s=0.05)
        try:
            watcher.publish_current()
            assert store.current_path != path
            assert os.path.exists(store.current_path)
            # Replacing the watched file twice in one tick still leaves
            # the published snapshot's bytes pinned (hard link).
            snap_of_v1 = store.current_path
            tmp = str(tmp_path / "next.rpro")
            Reachability(random_dag(25, 60, seed=3), "DL").save(tmp)
            os.replace(tmp, path)
            assert Reachability.load(snap_of_v1).query(0, 24) is True  # v1 bits
        finally:
            watcher.close()
            store.close()

    def test_watcher_warns_after_a_losing_streak(self, tmp_path):
        path = str(tmp_path / "watched.rpro")
        Reachability(path_dag(10), "DL").save(path)
        store = VersionedArtifactStore()
        watcher = ArtifactWatcher(store, path, interval_s=0.05, warn_after=3)
        try:
            watcher.publish_current()
            with open(path, "wb") as f:  # a publisher stuck broken
                f.write(b"garbage")
            with pytest.warns(RuntimeWarning, match="failed to load"):
                for _ in range(3):
                    assert watcher.poll_once() is None
            # One warning per streak, not one per tick.
            import warnings as _warnings

            with _warnings.catch_warnings():
                _warnings.simplefilter("error")
                assert watcher.poll_once() is None
            assert watcher.stats()["consecutive_failures"] == 4
            assert store.current_epoch == 1  # still serving v1
        finally:
            watcher.close()
            store.close()

    def test_watcher_backoff_grows_and_resets(self, tmp_path):
        path = str(tmp_path / "watched.rpro")
        Reachability(path_dag(10), "DL").save(path)
        store = VersionedArtifactStore()
        watcher = ArtifactWatcher(
            store, path, interval_s=0.05, warn_after=100
        )
        try:
            watcher.publish_current()
            assert watcher.backoff_interval_s() == pytest.approx(0.05)
            with open(path, "wb") as f:
                f.write(b"garbage")
            waits = []
            for _ in range(5):
                watcher.poll_once()
                waits.append(watcher.backoff_interval_s())
            # Exponential up to the cap (8 ticks of interval_s).
            assert waits == pytest.approx([0.1, 0.2, 0.4, 0.4, 0.4])
            tmp = str(tmp_path / "good.rpro")
            Reachability(path_dag(12), "DL").save(tmp)
            os.replace(tmp, path)
            assert watcher.poll_once() == 2  # success resets everything
            assert watcher.backoff_interval_s() == pytest.approx(0.05)
            assert watcher.stats()["consecutive_failures"] == 0
        finally:
            watcher.close()
            store.close()

    def test_watcher_retries_past_garbage_files(self, tmp_path):
        path = str(tmp_path / "watched.rpro")
        Reachability(path_dag(10), "DL").save(path)
        store = VersionedArtifactStore()
        watcher = ArtifactWatcher(store, path, interval_s=0.05)
        try:
            assert watcher.publish_current() == 1
            with open(path, "wb") as f:  # a half-written replacement
                f.write(b"garbage")
            assert watcher.poll_once() is None
            assert watcher.stats()["failures"] == 1
            assert store.current_epoch == 1  # still serving v1
            tmp = str(tmp_path / "good.rpro")
            Reachability(path_dag(12), "DL").save(tmp)
            os.replace(tmp, path)
            assert watcher.poll_once() == 2
        finally:
            watcher.close()
            store.close()


class TestFacadeLiveLifecycle:
    def test_add_edge_requires_live_serving(self):
        r = Reachability(path_dag(5))
        with pytest.raises(RuntimeError, match="serve\\(live=True\\)"):
            r.add_edge(0, 4)

    def test_swap_disables_updates(self, tmp_path):
        g = path_dag(20)
        r = Reachability(g, "DL")
        server = r.serve(live=True)
        try:
            other = str(tmp_path / "other.rpro")
            Reachability(path_dag(20), "DL").save(other)
            r.swap_artifact(other)
            with pytest.raises(RuntimeError, match="no update path"):
                r.add_edge(0, 19)
        finally:
            server.close()

    def test_live_restart_resumes_updated_graph(self):
        g = DiGraph.from_edges(4, [(0, 1), (2, 3)])
        r = Reachability(g, "DL")
        server = r.serve(live=True)
        addr = server.address
        r.add_edge(1, 2)
        with ReachClient(*addr) as client:
            assert client.query(0, 3) is True
        server.close()
        assert r.live_epoch is None
        # A second serve(live=True) resumes from the *updated* stream.
        server2 = r.serve(live=True)
        try:
            with ReachClient(*server2.address) as client:
                assert client.query(0, 3) is True
        finally:
            server2.close()

    def test_double_live_serve_is_rejected(self):
        r = Reachability(path_dag(6), "DL")
        server = r.serve(live=True)
        try:
            with pytest.raises(RuntimeError, match="already serving live"):
                r.serve(live=True)
        finally:
            server.close()

    def test_serve_mode_facade_gets_swap_but_not_updates(self, tmp_path):
        path = str(tmp_path / "pipe.rpro")
        Reachability(path_dag(15), "DL").save(path)
        r = Reachability.load(path)
        server = r.serve(live=True)
        try:
            with pytest.raises(RuntimeError, match="no update path"):
                r.add_edge(0, 14)
            v2 = str(tmp_path / "v2.rpro")
            Reachability(random_dag(15, 40, seed=7), "DL").save(v2)
            assert r.swap_artifact(v2) == 2
        finally:
            server.close()


class TestEpochRaceHardening:
    """Regressions for the flip-between-cache-read-and-lease races."""

    def _joinable_chains(self):
        # Two chains; v2 joins them, so cross pairs flip False -> True.
        n = 8
        edges = [(i, i + 1) for i in range(3)]
        edges += [(4 + i, 4 + i + 1) for i in range(3)]
        return DiGraph.from_edges(n, edges)

    def test_cache_hit_plus_flip_never_mixes_epochs_in_one_reply(self, tmp_path):
        g = self._joinable_chains()
        li = LiveIndex(IncrementalCompiler(g))
        service = QueryService(live=li, window_s=0.05, cache_size=1024).start()
        try:
            # Prime the cache at epoch 1: (0, 7) is False (chains split).
            assert service.query(0, 7) is False
            done = threading.Event()
            box = {}

            def ask():
                # (0,7) hits the epoch-1 cache; (1,7) rides the batcher.
                box["answers"] = service.query_pairs([(0, 7), (1, 7)])
                done.set()

            t = threading.Thread(target=ask)
            t.start()
            time.sleep(0.01)  # inside the 50 ms window
            li.apply_updates([(3, 4)])  # join the chains -> epoch 2
            assert done.wait(10)
            t.join()
            # Both answers must reflect ONE epoch.  Mixing would give
            # [False (stale cache@1), True (fresh@2)].
            assert box["answers"] in ([False, False], [True, True]), box
            # ...and since the batch resolved at epoch 2, the service
            # must have retried: the reply is pure v2.
            assert box["answers"] == [True, True]
        finally:
            service.close()
            li.close()

    def test_shrinking_swap_mid_window_fails_with_clear_error(self, tmp_path):
        big = str(tmp_path / "big.rpro")
        small = str(tmp_path / "small.rpro")
        Reachability(path_dag(100), "DL").save(big)
        Reachability(path_dag(10), "DL").save(small)
        store = VersionedArtifactStore()
        store.publish(big)
        service = QueryService(store=store, owns_store=True,
                               window_s=0.05, cache_size=0).start()
        try:
            box = {}
            done = threading.Event()

            def ask():
                try:
                    box["answers"] = service.query_pairs([(0, 99)])
                except ValueError as exc:
                    box["error"] = str(exc)
                done.set()

            t = threading.Thread(target=ask)
            t.start()
            time.sleep(0.01)  # ingress validated against n=100 already
            store.publish(small)
            assert done.wait(10)
            t.join()
            assert "error" in box, box
            assert "smaller graph" in box["error"]
        finally:
            service.close()


class TestMeasureLiveSwapErrors:
    def test_update_failures_propagate_not_negative_swaps(self):
        from repro.bench.harness import measure_live_swap

        g = random_dag(60, 150, seed=71)
        rng = random.Random(72)
        pairs = [(rng.randrange(60), rng.randrange(60)) for _ in range(300)]
        with pytest.raises(ValueError, match="out of range"):
            measure_live_swap(g, pairs, [(0, 10**6)], update_at_frac=0.0)


class TestDetachedReServe:
    def test_reserve_after_external_swap_raises(self, tmp_path):
        r = Reachability(path_dag(12), "DL")
        server = r.serve(live=True)
        other = str(tmp_path / "other.rpro")
        Reachability(random_dag(12, 30, seed=3), "DL").save(other)
        r.swap_artifact(other)
        server.close()
        # Reviving the pre-swap compiler would silently roll back the
        # externally swapped data; the facade must refuse instead.
        with pytest.raises(RuntimeError, match="external artifact"):
            r.serve(live=True)


class TestNoOpUpdates:
    def test_unchanged_streams_skip_the_publish(self):
        g = path_dag(6)
        li = LiveIndex(IncrementalCompiler(g))
        try:
            cache_epoch = li.current_epoch
            # Duplicate + already-reachable edges: nothing an oracle
            # answers differently, so no compile, no flip, no cache
            # invalidation.
            summary = li.apply_updates([(0, 1), (0, 5)])
            assert summary["changed"] == 0
            assert summary["published"] is False
            assert summary["epoch"] == cache_epoch
            assert li.current_epoch == cache_epoch
            # An empty stream is also a no-op.
            summary = li.apply_updates([])
            assert summary["published"] is False
            assert li.current_epoch == cache_epoch
        finally:
            li.close()

    def test_changing_stream_publishes(self):
        g = DiGraph.from_edges(4, [(0, 1), (2, 3)])
        li = LiveIndex(IncrementalCompiler(g))
        try:
            summary = li.apply_updates([(1, 2)])
            assert summary["published"] is True
            assert summary["epoch"] == 2
        finally:
            li.close()


class TestServeModeSwapReServe:
    def test_serve_mode_reserve_after_swap_raises_too(self, tmp_path):
        # The serve-mode twin of the build-mode rollback guard: after an
        # external swap, re-serving must not silently republish this
        # facade's own (pre-swap) artifact.
        own = str(tmp_path / "own.rpro")
        Reachability(path_dag(15), "DL").save(own)
        r = Reachability.load(own)
        server = r.serve(live=True)
        other = str(tmp_path / "other.rpro")
        Reachability(random_dag(15, 40, seed=5), "DL").save(other)
        r.swap_artifact(other)
        server.close()
        with pytest.raises(RuntimeError, match="external artifact"):
            r.serve(live=True)


class TestSwapSnapshotPinning:
    def test_swapped_file_may_be_deleted_immediately(self, tmp_path):
        # swap_artifact publishes a snapshot, so the caller's file is
        # free to go the moment the call returns — even with a worker
        # pool that maps epochs lazily.
        g = random_dag(40, 100, seed=9)
        r = Reachability(path_dag(40), "DL")
        server = r.serve(live=True, workers=2)
        try:
            v2 = str(tmp_path / "v2.rpro")
            Reachability(g.copy(), "DL").save(v2)
            expected = Reachability.load(v2).query_batch(
                [(u, v) for u in range(0, 40, 3) for v in range(0, 40, 3)]
            )
            r.swap_artifact(v2)
            os.unlink(v2)  # gone before any worker mapped it
            with ReachClient(*server.address) as client:
                pairs = [(u, v) for u in range(0, 40, 3) for v in range(0, 40, 3)]
                assert client.query_batch(pairs) == expected
        finally:
            server.close()
