"""IncrementalCompiler: correctness vs fresh builds, section reuse,
full-recompile fallbacks."""

import random

import pytest

from repro.facade import Reachability
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_dag, random_dag
from repro.graph.traversal import bfs_reaches
from repro.live import IncrementalCompiler
from repro.serialization import load_artifact


def sample_pairs(n, count, seed):
    rng = random.Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


def acyclic_insert_stream(graph, count, seed):
    """Edges that are new and keep the graph acyclic (no SCC merges)."""
    rng = random.Random(seed)
    shadow = graph.copy()
    stream = []
    tries = 0
    while len(stream) < count and tries < count * 80:
        tries += 1
        u, v = rng.randrange(graph.n), rng.randrange(graph.n)
        if u == v or shadow.has_edge(u, v):
            continue
        if bfs_reaches(shadow.out_adj, v, u):
            continue
        shadow.add_edge(u, v)
        stream.append((u, v))
    return stream, shadow


class TestArtifactParity:
    """A compiled artifact must be indistinguishable from a fresh save."""

    def test_initial_compile_matches_fresh_build(self, tmp_path):
        g = random_dag(150, 400, seed=1)
        comp = IncrementalCompiler(g)
        path = str(tmp_path / "v1.rpro")
        info = comp.compile_to(path)
        assert info["full"] is True
        served = load_artifact(path)
        fresh = Reachability(g.copy(), "DL")
        pairs = sample_pairs(150, 4000, seed=2)
        assert served.query_batch(pairs) == fresh.query_batch(pairs)

    @pytest.mark.parametrize("seed", range(4))
    def test_incremental_artifacts_match_fresh_builds(self, tmp_path, seed):
        g = random_dag(120, 300, seed=seed)
        comp = IncrementalCompiler(g)
        comp.compile_to(str(tmp_path / "v1.rpro"))  # first compile: full
        stream, shadow = acyclic_insert_stream(g, 20, seed=seed + 100)
        for u, v in stream:
            comp.add_edge(u, v)
        path = str(tmp_path / "v2.rpro")
        info = comp.compile_to(path)
        assert info["full"] is False  # acyclic inserts stay incremental
        served = load_artifact(path)
        fresh = Reachability(shadow.copy(), "DL")
        pairs = sample_pairs(120, 4000, seed=seed + 200)
        assert served.query_batch(pairs) == fresh.query_batch(pairs)

    def test_cyclic_inserts_match_fresh_builds(self, tmp_path):
        # Random edges ignoring acyclicity: exercises the SCC-merge
        # rebuild fallback, including multi-component collapses.
        g = random_dag(80, 200, seed=9)
        comp = IncrementalCompiler(g)
        shadow = g.copy()
        rng = random.Random(10)
        added = 0
        while added < 25:
            u, v = rng.randrange(80), rng.randrange(80)
            if u == v or shadow.has_edge(u, v):
                continue
            shadow.add_edge(u, v)
            comp.add_edge(u, v)
            added += 1
        assert comp.stats()["scc_merges"] > 0  # the stream must hit it
        path = str(tmp_path / "v.rpro")
        comp.compile_to(path)
        served = load_artifact(path)
        fresh = Reachability(shadow.copy(), "DL")
        pairs = sample_pairs(80, 3000, seed=11)
        assert served.query_batch(pairs) == fresh.query_batch(pairs)
        # Same-SCC pairs answer True both ways around.
        scc_pairs = [
            (u, v) for u, v in pairs if fresh.same_scc(u, v)
        ]
        if scc_pairs:
            assert all(served.query_batch(scc_pairs))


class TestSectionReuse:
    def test_incremental_compile_reuses_untouched_arenas(self, tmp_path):
        g = random_dag(200, 500, seed=3)
        comp = IncrementalCompiler(g)
        comp.compile_to(str(tmp_path / "v1.rpro"))
        stream, _ = acyclic_insert_stream(g, 5, seed=7)
        for u, v in stream:
            comp.add_edge(u, v)
        info = comp.compile_to(str(tmp_path / "v2.rpro"))
        assert info["full"] is False
        # comp map, out-side arena (2 sections) and hop_vertex reuse
        # their packed bytes; only the in side (+ height) repack.
        assert info["sections_reused"] == 4
        repacked = info["sections_repacked"]
        assert repacked == 3  # in_hops, in_offs, height

    def test_incremental_compile_is_cheaper_than_full(self, tmp_path):
        g = random_dag(3000, 9000, seed=5)
        comp = IncrementalCompiler(g)
        full = comp.compile_to(str(tmp_path / "v1.rpro"))
        comp.add_edge(*acyclic_insert_stream(g, 1, seed=6)[0][0])
        inc = comp.compile_to(str(tmp_path / "v2.rpro"))
        assert inc["full"] is False
        assert inc["compile_s"] < full["compile_s"]

    def test_forced_full_compile_repacks_everything(self, tmp_path):
        g = random_dag(100, 250, seed=8)
        comp = IncrementalCompiler(g)
        comp.compile_to(str(tmp_path / "v1.rpro"))
        info = comp.compile_to(str(tmp_path / "v2.rpro"), full=True)
        assert info["full"] is True
        assert info["sections_reused"] == 0


class TestFallbacks:
    def test_auto_rebuild_factor_triggers_full_compile(self, tmp_path):
        g = random_dag(60, 120, seed=12)
        comp = IncrementalCompiler(g, auto_rebuild_factor=1.001)
        comp.compile_to(str(tmp_path / "v1.rpro"))
        stream, shadow = acyclic_insert_stream(g, 15, seed=13)
        for u, v in stream:
            comp.add_edge(u, v)
        assert comp.stats()["auto_rebuilds"] > 0
        info = comp.compile_to(str(tmp_path / "v2.rpro"))
        assert info["full"] is True  # rebuild invalidated the out side
        served = load_artifact(str(tmp_path / "v2.rpro"))
        fresh = Reachability(shadow.copy(), "DL")
        pairs = sample_pairs(60, 2000, seed=14)
        assert served.query_batch(pairs) == fresh.query_batch(pairs)

    def test_scc_merge_marks_full(self, tmp_path):
        comp = IncrementalCompiler(DiGraph.from_edges(4, [(0, 1), (1, 2)]))
        comp.compile_to(str(tmp_path / "v1.rpro"))
        info = comp.add_edge(2, 0)
        assert info["kind"] == "scc-merge"
        out = comp.compile_to(str(tmp_path / "v2.rpro"))
        assert out["full"] is True
        served = load_artifact(str(tmp_path / "v2.rpro"))
        assert served.query(2, 1) and served.same_scc(0, 2)


class TestEdgeHandling:
    def test_duplicate_edge_is_a_noop(self):
        comp = IncrementalCompiler(path_dag(5))
        info = comp.add_edge(0, 1)
        assert info == {"kind": "duplicate", "changed": False, "rebuilt": False}
        assert comp.stats()["duplicate_edges"] == 1
        assert comp.m == 4

    def test_intra_scc_and_already_reachable_edges_skip_labels(self):
        # 0 -> 1 -> 2 -> 0 is one SCC; 3 hangs off it.
        comp = IncrementalCompiler(
            DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
        )
        size_before = comp.stats()["index_size_ints"]
        intra = comp.add_edge(0, 2)  # chord inside the SCC
        assert intra == {"kind": "intra-scc", "changed": False, "rebuilt": False}
        already = comp.add_edge(1, 3)  # distinct components, reachable
        assert already["kind"] == "inserted" and already["changed"] is False
        assert comp.stats()["index_size_ints"] == size_before
        assert comp.query(0, 3) and comp.query(1, 3)

    def test_self_loop_rejected(self):
        comp = IncrementalCompiler(path_dag(3))
        with pytest.raises(ValueError, match="[Ss]elf-loop"):
            comp.add_edge(1, 1)

    def test_out_of_range_rejected(self):
        comp = IncrementalCompiler(path_dag(3))
        with pytest.raises(ValueError, match="out of range"):
            comp.add_edge(0, 3)

    def test_remove_edge_tombstones_and_flips_answers(self):
        comp = IncrementalCompiler(path_dag(4))
        assert comp.query(0, 3)
        info = comp.remove_edge(1, 2)
        assert info["kind"] == "tombstoned" and info["changed"] is True
        assert not comp.query(0, 3)
        assert comp.query(0, 1) and comp.query(2, 3)
        assert comp.stats()["tombstones"] == 1

    def test_remove_absent_edge_is_a_noop(self):
        comp = IncrementalCompiler(path_dag(3))
        info = comp.remove_edge(0, 2)
        assert info == {"kind": "absent", "changed": False, "rebuilt": False}
        assert comp.stats()["absent_removals"] == 1

    def test_remove_intra_scc_edge_keeps_component_when_intact(self):
        # 0 -> 1 -> 2 -> 0 plus chord 0 -> 2: dropping the chord keeps
        # the SCC strongly connected.
        comp = IncrementalCompiler(
            DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0), (0, 2)])
        )
        info = comp.remove_edge(0, 2)
        assert info["kind"] == "intra-scc" and info["changed"] is False
        assert comp.query(2, 1) and comp.query(1, 0)

    def test_remove_intra_scc_edge_splits_component(self):
        comp = IncrementalCompiler(DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)]))
        info = comp.remove_edge(2, 0)
        assert info["kind"] == "scc-split" and info["rebuilt"] is True
        assert comp.query(0, 2)
        assert not comp.query(2, 0)

    def test_remove_multi_edge_keeps_dag_edge(self):
        # Two original edges cross between the SCC {0,1} and vertex 2.
        comp = IncrementalCompiler(
            DiGraph.from_edges(3, [(0, 1), (1, 0), (0, 2), (1, 2)])
        )
        info = comp.remove_edge(0, 2)
        assert info["kind"] == "multi-edge" and info["changed"] is False
        assert comp.query(0, 2)  # still via 1 -> 2
        info = comp.remove_edge(1, 2)
        assert info["kind"] == "tombstoned" and info["changed"] is True
        assert not comp.query(0, 2)

    def test_caller_graph_never_mutated(self):
        g = path_dag(4)
        comp = IncrementalCompiler(g)
        comp.add_edge(0, 2)
        assert not g.has_edge(0, 2)

    def test_query_tracks_updates(self):
        comp = IncrementalCompiler(DiGraph.from_edges(4, [(0, 1), (2, 3)]))
        assert not comp.query(0, 3)
        comp.add_edge(1, 2)
        assert comp.query(0, 3)
        assert comp.query_batch([(0, 3), (3, 0)]) == [True, False]


class TestFromPipeline:
    def test_seeded_compiler_matches_fresh_build(self, tmp_path):
        # serve(live=True) seeds the compiler from the facade's built DL
        # index; the resulting artifacts must be bit-identical in
        # answers to a compiler built from scratch — before and after
        # an insert stream.
        g = DiGraph.from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)])
        fresh = IncrementalCompiler(g)
        seeded = IncrementalCompiler.from_pipeline(Reachability(g, "DL"))
        stream = [(3, 4), (5, 1)]  # the second closes a cycle
        pairs = [(u, v) for u in range(6) for v in range(6)]
        assert seeded.query_batch(pairs) == fresh.query_batch(pairs)
        for u, v in stream[:1]:
            fresh.add_edge(u, v)
            seeded.add_edge(u, v)
        p1 = str(tmp_path / "fresh.rpro")
        p2 = str(tmp_path / "seeded.rpro")
        fresh.compile_to(p1)
        seeded.compile_to(p2)
        assert (
            load_artifact(p1).query_batch(pairs)
            == load_artifact(p2).query_batch(pairs)
        )

    def test_seeding_does_not_corrupt_the_facade_index(self):
        g = DiGraph.from_edges(5, [(0, 1), (3, 4)])
        r = Reachability(g, "DL")
        comp = IncrementalCompiler.from_pipeline(r)
        before = r.query_batch([(0, 4), (0, 1)])
        comp.add_edge(1, 3)  # mutates the compiler's label copy only
        assert comp.query(0, 4) is True
        assert r.query_batch([(0, 4), (0, 1)]) == before  # snapshot intact

    def test_non_dl_facade_falls_back_to_fresh_build(self):
        r = Reachability(path_dag(6), "GL")
        comp = IncrementalCompiler.from_pipeline(r)
        assert comp.query(0, 5) is True

    def test_serve_mode_facade_rejected(self, tmp_path):
        path = str(tmp_path / "p.rpro")
        Reachability(path_dag(5), "DL").save(path)
        with pytest.raises(TypeError, match="build-mode"):
            IncrementalCompiler.from_pipeline(Reachability.load(path))


class TestAtomicStreams:
    def test_bad_edge_mid_stream_applies_nothing(self):
        from repro.live import LiveIndex

        li = LiveIndex(IncrementalCompiler(DiGraph.from_edges(4, [(0, 1)])))
        try:
            with pytest.raises(ValueError, match="out of range"):
                li.apply_updates([(1, 2), (99, 3)])
            # The valid prefix must NOT have been applied: a rejected
            # stream is all-or-nothing.
            assert li.compiler.m == 1
            assert li.compiler.query(1, 2) is False
            assert li.current_epoch == 1
        finally:
            li.close()
