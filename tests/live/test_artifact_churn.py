"""Artifacts with removals: tombstones survive the serialization trip.

A removal that cannot be resolved structurally (last original copy of
a live DAG edge) rides the artifact as a tombstone section plus the
live adjacency CSR; the loaded engine must demote label-positive pairs
through it.  Compaction drops the sections again.
"""

import random

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import bfs_reaches
from repro.live import IncrementalCompiler
from repro.serialization import artifact_info, load_artifact


def _bfs_truth(graph, pairs):
    return [u == v or bfs_reaches(graph.out_adj, u, v) for u, v in pairs]


def _churn(comp, shadow, rng, steps):
    ops = []
    for _ in range(steps):
        if rng.random() < 0.45 and shadow.m:
            u, v = rng.choice(sorted(shadow.edges()))
            shadow.remove_edge(u, v)
            ops.append(("-", u, v))
        else:
            u, v = rng.randrange(shadow.n), rng.randrange(shadow.n)
            if u == v or shadow.has_edge(u, v):
                continue
            shadow.add_edge(u, v)
            ops.append(("+", u, v))
    comp.apply_ops(ops)
    return ops


@pytest.mark.parametrize("seed", range(6))
def test_churned_artifact_matches_bfs(tmp_path, seed):
    rng = random.Random(seed)
    g = random_dag(60, 150, seed=seed)
    comp = IncrementalCompiler(g)
    shadow = g.copy()
    _churn(comp, shadow, rng, 40)

    path = str(tmp_path / "churn.rpro")
    comp.compile_to(path)
    served = load_artifact(path)
    pairs = [(rng.randrange(60), rng.randrange(60)) for _ in range(2000)]
    truth = _bfs_truth(shadow, pairs)
    assert served.query_batch(pairs) == truth
    assert [served.query(u, v) for u, v in pairs[:200]] == truth[:200]
    # compiler answers agree with its own artifact
    assert comp.query_batch(pairs[:200]) == truth[:200]


def test_tombstone_sections_come_and_go(tmp_path):
    g = DiGraph(6)
    for u, v in [(0, 1), (1, 2), (3, 4)]:
        g.add_edge(u, v)
    comp = IncrementalCompiler(g)
    comp.remove_edge(1, 2)

    dirty = str(tmp_path / "dirty.rpro")
    comp.compile_to(dirty)
    assert artifact_info(dirty)["meta"]["live"]["tombstones"] == 1
    served = load_artifact(dirty)
    assert served.query(0, 2) is False
    assert served.query(0, 1) is True

    comp.compact()
    clean = str(tmp_path / "clean.rpro")
    comp.compile_to(clean)
    assert artifact_info(clean)["meta"]["live"]["tombstones"] == 0
    served = load_artifact(clean)
    assert served.query(0, 2) is False
    assert served.query(3, 4) is True


def test_witness_skips_tombstoned_hops(tmp_path):
    # 0 -> 1 -> 2 with the only path through the removed edge: a
    # positive-label pair must demote, and witnesses on surviving
    # pairs must name a live hop.
    g = DiGraph(5)
    for u, v in [(0, 1), (1, 2), (0, 3), (3, 2), (2, 4)]:
        g.add_edge(u, v)
    comp = IncrementalCompiler(g)
    comp.remove_edge(3, 2)  # 0 still reaches 2 via 1
    path = str(tmp_path / "w.rpro")
    comp.compile_to(path)
    served = load_artifact(path)
    assert served.query(0, 2) is True
    assert served.query(3, 2) is False
    assert served.query(3, 4) is False
    comp_ids = served.condensation.comp
    w = served.index.witness(comp_ids[0], comp_ids[2])
    assert w is not None
