"""VersionedArtifactStore: epochs, leases, drain/unmap semantics."""

import os

import pytest

from repro.facade import Reachability
from repro.graph.generators import path_dag, random_dag
from repro.live import VersionedArtifactStore


@pytest.fixture()
def two_artifacts(tmp_path):
    """Two pipeline artifacts over different graphs, plus the graphs."""
    g1 = path_dag(50)
    g2 = random_dag(50, 120, seed=4)
    p1 = str(tmp_path / "v1.rpro")
    p2 = str(tmp_path / "v2.rpro")
    Reachability(g1, "DL").save(p1)
    Reachability(g2, "DL").save(p2)
    return g1, g2, p1, p2


class TestEpochs:
    def test_epochs_are_monotone_from_one(self, two_artifacts):
        _g1, _g2, p1, p2 = two_artifacts
        with VersionedArtifactStore() as store:
            assert store.current_epoch is None
            assert store.publish(p1) == 1
            assert store.publish(p2) == 2
            assert store.publish(p1) == 3  # re-publishing never reuses epochs
            assert store.current_epoch == 3
            assert store.current_path == p1

    def test_acquire_without_publish_raises(self):
        store = VersionedArtifactStore()
        with pytest.raises(RuntimeError, match="no published epoch"):
            store.acquire()

    def test_explicit_epochs_pin_the_number(self, two_artifacts):
        """The replication path: a replica mirrors the primary's epoch
        numbers instead of taking the next local one."""
        _g1, _g2, p1, p2 = two_artifacts
        with VersionedArtifactStore() as store:
            assert store.publish(p1, epoch=7) == 7
            assert store.current_epoch == 7
            assert store.publish(p2) == 8  # auto-numbering follows along
            assert store.publish_snapshot(p1, epoch=12) == 12

    def test_explicit_epoch_must_be_ahead(self, two_artifacts):
        _g1, _g2, p1, p2 = two_artifacts
        with VersionedArtifactStore() as store:
            store.publish(p1, epoch=5)
            for stale in (5, 3):  # equal and older both refuse
                with pytest.raises(ValueError, match="monotone"):
                    store.publish(p2, epoch=stale)
                with pytest.raises(ValueError, match="monotone"):
                    store.publish_snapshot(p2, epoch=stale)
            # The refusal changes nothing: same epoch, same content.
            assert store.current_epoch == 5
            assert store.current_path == p1

    def test_failed_load_leaves_store_untouched(self, two_artifacts, tmp_path):
        _g1, _g2, p1, _p2 = two_artifacts
        bad = tmp_path / "bad.rpro"
        bad.write_bytes(b"not an artifact at all")
        with VersionedArtifactStore() as store:
            store.publish(p1)
            with pytest.raises(ValueError):
                store.publish(str(bad))
            assert store.current_epoch == 1
            assert store.current_path == p1
            with store.acquire() as lease:
                assert lease.oracle.query(0, 49)


class TestLeases:
    def test_lease_pins_its_epoch_oracle(self, two_artifacts):
        g1, g2, p1, p2 = two_artifacts
        with VersionedArtifactStore() as store:
            store.publish(p1)
            lease = store.acquire()
            store.publish(p2)
            # The lease still answers with v1 semantics even though the
            # pointer moved: 0 -> 49 holds on the path graph only.
            assert lease.oracle.query(0, 49) is True
            assert lease.epoch == 1
            fresh = store.acquire()
            assert fresh.epoch == 2
            fresh.release()
            lease.release()

    def test_double_release_is_noop(self, two_artifacts):
        _g1, _g2, p1, _p2 = two_artifacts
        with VersionedArtifactStore() as store:
            store.publish(p1)
            lease = store.acquire()
            lease.release()
            lease.release()
            assert store.stats()["in_flight_leases"] == 0

    def test_context_manager_releases(self, two_artifacts):
        _g1, _g2, p1, _p2 = two_artifacts
        with VersionedArtifactStore() as store:
            store.publish(p1)
            with store.acquire() as lease:
                assert store.stats()["in_flight_leases"] == 1
                assert lease.oracle is not None
            assert store.stats()["in_flight_leases"] == 0


class TestDrain:
    def test_retired_epoch_drains_once_last_lease_releases(self, two_artifacts):
        _g1, _g2, p1, p2 = two_artifacts
        store = VersionedArtifactStore()
        store.publish(p1)
        lease = store.acquire()
        store.publish(p2)
        stats = store.stats()
        assert stats["loaded_versions"] == 2
        assert stats["retired_waiting"] == 1
        assert stats["drains"] == 0
        lease.release()
        stats = store.stats()
        assert stats["loaded_versions"] == 1
        assert stats["retired_waiting"] == 0
        assert stats["drains"] == 1
        store.close()

    def test_unreferenced_retired_epoch_drains_immediately(self, two_artifacts):
        _g1, _g2, p1, p2 = two_artifacts
        store = VersionedArtifactStore()
        store.publish(p1)
        store.publish(p2)
        assert store.stats()["drains"] == 1
        assert store.loaded_epochs() == [2]
        store.close()

    def test_drain_closes_the_mmap(self, two_artifacts):
        _g1, _g2, p1, p2 = two_artifacts
        store = VersionedArtifactStore()
        store.publish(p1)
        first = store.current_oracle()
        art = first.index.artifact
        assert art.mapped and not art.closed
        del first
        store.publish(p2)
        assert art.closed, "retired epoch's artifact was not unmapped"
        store.close()

    def test_owned_files_are_unlinked_on_drain(self, two_artifacts, tmp_path):
        _g1, _g2, p1, p2 = two_artifacts
        import shutil

        owned = str(tmp_path / "owned.rpro")
        shutil.copy(p1, owned)
        store = VersionedArtifactStore()
        store.publish(owned, owns_file=True)
        store.publish(p2)  # retires + drains the owned epoch
        assert not os.path.exists(owned)
        assert os.path.exists(p2)  # non-owned files are never touched
        store.close()

    def test_close_drains_everything_idle(self, two_artifacts):
        _g1, _g2, p1, p2 = two_artifacts
        store = VersionedArtifactStore()
        store.publish(p1)
        store.publish(p2)
        store.close()
        assert store.loaded_epochs() == []
        with pytest.raises(RuntimeError, match="closed"):
            store.acquire()
        with pytest.raises(RuntimeError, match="closed"):
            store.publish(p1)

    def test_close_with_live_lease_defers_drain(self, two_artifacts):
        _g1, _g2, p1, _p2 = two_artifacts
        store = VersionedArtifactStore()
        store.publish(p1)
        lease = store.acquire()
        store.close()
        # The leased version survives until release...
        assert store.loaded_epochs() == [1]
        assert lease.oracle is not None
        lease.release()
        assert store.loaded_epochs() == []
