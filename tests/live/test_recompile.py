"""Dirt-triggered background recompiles: the tombstone debt ceiling.

Removals serve through query-time tombstones; once the tombstoned
fraction of the graph's edges reaches ``dirt_threshold`` the LiveIndex
schedules a compact + full publish in the background.  The trigger is
boundary-exact (``>=``), one recompile thread runs at a time, and
answers must be identical before, during and after the epoch flip.
"""

import pytest

from repro.graph.digraph import DiGraph
from repro.live import IncrementalCompiler, LiveIndex


def _pairs_graph(pairs=8):
    """``pairs`` disjoint edges: removing one never reroutes another."""
    g = DiGraph(2 * pairs)
    for i in range(pairs):
        g.add_edge(2 * i, 2 * i + 1)
    return g


def test_threshold_is_boundary_exact():
    # 8 ghost edges, threshold 0.25: the 2nd tombstone lands exactly on
    # the boundary and must fire; the 1st (ratio 0.125) must not.
    live = LiveIndex(
        IncrementalCompiler(_pairs_graph(8)), dirt_threshold=0.25
    )
    try:
        live.apply_ops([("-", 0, 1)])
        assert live.recompile_wait(timeout=5.0)
        assert live.recompiles == 0
        assert live.compiler.dirt_ratio == pytest.approx(0.125)

        live.apply_ops([("-", 2, 3)])
        assert live.recompile_wait(timeout=5.0)
        assert live.recompiles == 1
        # Compacted: tombstones gone, labels exact for the live graph.
        assert live.compiler.dirt_ratio == 0.0
        assert live.compiler.stats()["tombstones"] == 0
    finally:
        live.close()


def test_answers_survive_the_recompile_flip():
    live = LiveIndex(
        IncrementalCompiler(_pairs_graph(8)), dirt_threshold=0.25
    )
    try:
        live.apply_ops([("-", 0, 1), ("-", 2, 3)])
        assert live.recompile_wait(timeout=5.0)
        assert live.recompiles == 1
        epoch = live.current_epoch
        oracle = live.store.current_oracle()
        assert oracle.query(0, 1) is False
        assert oracle.query(2, 3) is False
        assert oracle.query(4, 5) is True
        # The recompile itself published a fresh (full) epoch.
        assert live.stats()["last_publish"]["full"] is True
        assert epoch >= 2
    finally:
        live.close()


def test_zero_threshold_disables_auto_compaction():
    live = LiveIndex(IncrementalCompiler(_pairs_graph(4)), dirt_threshold=0)
    try:
        for i in range(4):
            live.apply_ops([("-", 2 * i, 2 * i + 1)])
        assert live.recompile_wait(timeout=5.0)
        assert live.recompiles == 0
        assert live.compiler.dirt_ratio == 1.0
        oracle = live.store.current_oracle()
        assert all(
            oracle.query(2 * i, 2 * i + 1) is False for i in range(4)
        )
    finally:
        live.close()


def test_insert_churn_below_threshold_never_recompiles():
    live = LiveIndex(
        IncrementalCompiler(_pairs_graph(16)), dirt_threshold=0.5
    )
    try:
        live.apply_ops([("-", 0, 1), (1, 2), (3, 4), ("-", 2, 3)])
        assert live.recompile_wait(timeout=5.0)
        assert live.recompiles == 0
        assert 0 < live.compiler.dirt_ratio < 0.5
    finally:
        live.close()
