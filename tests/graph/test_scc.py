"""Tests for SCC detection and condensation."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.scc import condense, strongly_connected_components
from repro.graph.topo import is_dag
from repro.graph.generators import powerlaw_digraph, path_dag


def scc_sets(graph):
    comp = strongly_connected_components(graph.out_adj, graph.n)
    groups = {}
    for v, c in enumerate(comp):
        groups.setdefault(c, set()).add(v)
    return set(frozenset(s) for s in groups.values())


class TestTarjan:
    def test_single_cycle(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert scc_sets(g) == {frozenset({0, 1, 2})}

    def test_two_cycles_bridge(self):
        g = DiGraph.from_edges(6, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 3), (4, 5)])
        assert frozenset({0, 1}) in scc_sets(g)
        assert frozenset({3, 4}) in scc_sets(g)

    def test_dag_has_singleton_components(self):
        g = path_dag(5)
        assert scc_sets(g) == {frozenset({v}) for v in range(5)}

    def test_empty_graph(self):
        assert strongly_connected_components([], 0) == []

    def test_isolated_vertices(self):
        g = DiGraph(3)
        comp = strongly_connected_components(g.out_adj, 3)
        assert len(set(comp)) == 3

    def test_component_ids_reverse_topological(self):
        # Tarjan emits sink components first: comp id of a predecessor
        # must be greater than the comp id of its (distinct) successor.
        g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        comp = strongly_connected_components(g.out_adj, 4)
        assert comp[0] > comp[1] > comp[2] > comp[3]

    def test_long_chain_no_recursion_error(self):
        # Iterative implementation must survive deep structures.
        n = 50_000
        g = path_dag(n)
        comp = strongly_connected_components(g.out_adj, n)
        assert len(set(comp)) == n

    def test_mutual_pair(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        comp = strongly_connected_components(g.out_adj, 2)
        assert comp[0] == comp[1]


class TestCondense:
    def test_condensation_is_dag(self):
        g = powerlaw_digraph(120, 400, seed=3)
        c = condense(g)
        assert is_dag(c.dag)

    def test_members_partition_vertices(self):
        g = powerlaw_digraph(80, 250, seed=5)
        c = condense(g)
        seen = sorted(v for members in c.members for v in members)
        assert seen == list(range(g.n))

    def test_comp_and_members_consistent(self):
        g = powerlaw_digraph(60, 180, seed=7)
        c = condense(g)
        for v in range(g.n):
            assert v in c.members[c.comp[v]]

    def test_intra_component_edges_dropped(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 0), (1, 2)])
        c = condense(g)
        assert c.dag.n == 2
        assert c.dag.m == 1

    def test_parallel_component_edges_deduplicated(self):
        # Two original edges between the same pair of SCCs -> one DAG edge.
        g = DiGraph.from_edges(4, [(0, 1), (1, 0), (0, 2), (1, 2), (2, 3)])
        c = condense(g)
        assert c.dag.m == 2  # SCC{0,1} -> 2 -> 3

    def test_reachability_preserved_across_condensation(self):
        g = powerlaw_digraph(50, 160, seed=11)
        c = condense(g)
        from repro.graph.traversal import bfs_reaches

        for u in range(0, g.n, 7):
            for v in range(0, g.n, 5):
                orig = bfs_reaches(g.out_adj, u, v)
                cond = c.comp[u] == c.comp[v] or bfs_reaches(
                    c.dag.out_adj, c.comp[u], c.comp[v]
                )
                assert orig == cond

    def test_condense_of_dag_is_isomorphic_size(self):
        g = path_dag(6)
        c = condense(g)
        assert c.dag.n == 6
        assert c.dag.m == 5

    def test_component_of_helper(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        c = condense(g)
        assert c.component_of(0) == c.component_of(1)

    def test_repr(self):
        c = condense(path_dag(3))
        assert "components=3" in repr(c)

    def test_empty(self):
        c = condense(DiGraph(0))
        assert c.n_components == 0
