"""Tests for the DiGraph container."""

import pytest

from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph(0)
        assert g.n == 0
        assert g.m == 0
        assert list(g.edges()) == []

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(-1)

    def test_add_edge_returns_true_when_new(self):
        g = DiGraph(3)
        assert g.add_edge(0, 1) is True

    def test_duplicate_edge_ignored(self):
        g = DiGraph(3)
        g.add_edge(0, 1)
        assert g.add_edge(0, 1) is False
        assert g.m == 1

    def test_self_loop_rejected(self):
        g = DiGraph(3)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_out_of_range_vertex_rejected(self):
        g = DiGraph(3)
        with pytest.raises(IndexError):
            g.add_edge(0, 3)
        with pytest.raises(IndexError):
            g.add_edge(-1, 0)

    def test_from_edges(self):
        g = DiGraph.from_edges(4, [(0, 1), (1, 2), (0, 1)])
        assert g.m == 2
        assert g.frozen

    def test_edge_count_tracks_additions(self):
        g = DiGraph(5)
        for i in range(4):
            g.add_edge(i, i + 1)
        assert g.m == 4


class TestAdjacency:
    def test_out_and_in_neighbours(self):
        g = DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 2)])
        assert list(g.out(0)) == [1, 2]
        assert list(g.inn(2)) == [0, 1]

    def test_degrees(self):
        g = DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 2)])
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2
        assert g.out_degree(3) == 0

    def test_has_edge(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_contains_dunder(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        assert (0, 1) in g
        assert (1, 2) not in g

    def test_sources_and_sinks(self):
        g = DiGraph.from_edges(4, [(0, 1), (1, 2), (3, 2)])
        assert g.sources() == [0, 3]
        assert g.sinks() == [2]

    def test_edges_iteration_sorted_after_freeze(self):
        g = DiGraph(3)
        g.add_edge(0, 2)
        g.add_edge(0, 1)
        g.freeze()
        assert list(g.edges()) == [(0, 1), (0, 2)]


class TestFreezeAndCopy:
    def test_freeze_sorts_adjacency(self):
        g = DiGraph(4)
        g.add_edge(0, 3)
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.freeze()
        assert list(g.out(0)) == [1, 2, 3]

    def test_frozen_graph_rejects_mutation(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        with pytest.raises(RuntimeError):
            g.add_edge(1, 2)

    def test_copy_is_mutable_and_independent(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert h.m == 2
        assert g.m == 1

    def test_freeze_idempotent(self):
        g = DiGraph(2)
        g.add_edge(0, 1)
        assert g.freeze() is g
        assert g.freeze() is g


class TestTransforms:
    def test_reverse(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 1)
        assert not r.has_edge(0, 1)
        assert r.m == g.m

    def test_reverse_preserves_frozen_state(self):
        g = DiGraph.from_edges(2, [(0, 1)])
        assert g.reverse().frozen

    def test_induced_subgraph(self):
        g = DiGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub, mapping = g.induced_subgraph([1, 2, 3])
        assert sub.n == 3
        assert mapping == [1, 2, 3]
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert sub.m == 2

    def test_induced_subgraph_drops_external_edges(self):
        g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        sub, _ = g.induced_subgraph([0, 3])
        assert sub.m == 0


class TestDunders:
    def test_len(self):
        assert len(DiGraph(7)) == 7

    def test_repr_mentions_sizes(self):
        r = repr(DiGraph.from_edges(3, [(0, 1)]))
        assert "n=3" in r and "m=1" in r

    def test_equality(self):
        a = DiGraph.from_edges(3, [(0, 1)])
        b = DiGraph.from_edges(3, [(0, 1)])
        c = DiGraph.from_edges(3, [(0, 2)])
        assert a == b
        assert a != c

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(DiGraph(1))
