"""Tests for the synthetic graph generators."""

import pytest

from repro.graph import generators as gen
from repro.graph.topo import is_dag, longest_path_length, topological_levels


class TestRandomDag:
    def test_is_dag(self):
        assert is_dag(gen.random_dag(100, 300, seed=1))

    def test_edge_count(self):
        g = gen.random_dag(60, 150, seed=2)
        assert g.m == 150

    def test_edge_count_clamped_to_max(self):
        g = gen.random_dag(5, 100, seed=3)
        assert g.m == 10  # 5*4/2

    def test_deterministic(self):
        a = gen.random_dag(40, 90, seed=7)
        b = gen.random_dag(40, 90, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = gen.random_dag(40, 90, seed=1)
        b = gen.random_dag(40, 90, seed=2)
        assert a != b

    def test_dense_fallback_fills_exactly(self):
        # Request nearly complete graph; rejection sampling must fall back.
        g = gen.random_dag(8, 27, seed=4)
        assert g.m == 27


class TestSparseDag:
    def test_is_dag_and_sparse(self):
        g = gen.sparse_dag(300, 0.08, seed=1)
        assert is_dag(g)
        assert g.m <= int(300 * 1.2)

    def test_mostly_connected_forest(self):
        g = gen.sparse_dag(200, 0.0, seed=2)
        roots = sum(1 for v in range(g.n) if g.in_degree(v) == 0)
        assert roots < g.n * 0.15


class TestCitationDag:
    def test_is_dag(self):
        assert is_dag(gen.citation_dag(200, 4, seed=1))

    def test_density_tracks_parameter(self):
        g = gen.citation_dag(400, 4, seed=2)
        assert 2.0 <= g.m / g.n <= 6.5

    def test_edges_point_to_older(self):
        g = gen.citation_dag(100, 3, seed=3)
        for u, v in g.edges():
            assert v < u  # newer cites older

    def test_heavy_tail_in_degree(self):
        g = gen.citation_dag(500, 4, seed=4)
        max_in = max(g.in_degree(v) for v in range(g.n))
        avg_in = g.m / g.n
        assert max_in > 4 * avg_in

    def test_min_cites_zero_allows_leaves(self):
        g = gen.citation_dag(300, 0.5, seed=5, min_cites=0)
        assert any(g.out_degree(v) == 0 for v in range(1, g.n))


class TestPowerlaw:
    def test_may_contain_cycles(self):
        # Not guaranteed per seed, but this seed produces cycles.
        g = gen.powerlaw_digraph(200, 600, seed=1)
        assert not is_dag(g)

    def test_edge_target_met(self):
        g = gen.powerlaw_digraph(150, 400, seed=2)
        assert g.m >= 350  # allows a small shortfall from attempt cap


class TestChainForest:
    def test_is_dag(self):
        assert is_dag(gen.chain_forest_dag(300, 40, 0.02, seed=1))

    def test_long_chains_exist(self):
        g = gen.chain_forest_dag(400, 60, 0.0, seed=2)
        assert longest_path_length(g) >= 30


class TestOntology:
    def test_is_dag(self):
        assert is_dag(gen.ontology_dag(200, 0.2, seed=1))

    def test_pure_forest_when_no_extras(self):
        g = gen.ontology_dag(300, 0.0, roots=3, seed=2)
        assert g.m == 300 - 3
        # child -> parent: every non-root has out-degree exactly 1
        assert all(g.out_degree(v) == 1 for v in range(3, g.n))

    def test_ancestor_sets_small(self):
        from repro.graph.closure import tc_size, transitive_closure_bits

        g = gen.ontology_dag(300, 0.0, seed=3)
        avg_closure = tc_size(transitive_closure_bits(g)) / g.n
        assert avg_closure < 40  # tree depth scale, not n scale


class TestLayered:
    def test_depth_equals_layers(self):
        g = gen.layered_dag(5, 8, 2, seed=1)
        assert longest_path_length(g) == 4

    def test_levels_match_layers(self):
        g = gen.layered_dag(4, 6, 3, seed=2)
        levels = topological_levels(g)
        for v in range(g.n):
            assert levels[v] <= v // 6


class TestFixedShapes:
    def test_path(self):
        g = gen.path_dag(5)
        assert g.m == 4
        assert longest_path_length(g) == 4

    def test_bipartite(self):
        g = gen.complete_bipartite_dag(3, 4)
        assert g.n == 7
        assert g.m == 12

    def test_star_out(self):
        g = gen.star_dag(6, out=True)
        assert g.out_degree(0) == 5

    def test_star_in(self):
        g = gen.star_dag(6, out=False)
        assert g.in_degree(0) == 5

    def test_single_vertex_path(self):
        g = gen.path_dag(1)
        assert g.n == 1 and g.m == 0
