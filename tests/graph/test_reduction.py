"""Tests for transitive reduction."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.closure import transitive_closure_bits
from repro.graph.reduction import (
    is_transitively_reduced,
    redundant_edges,
    transitive_reduction,
)
from repro.graph.generators import path_dag, random_dag, sparse_dag


class TestReduction:
    def test_triangle_shortcut_removed(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        r = transitive_reduction(g)
        assert sorted(r.edges()) == [(0, 1), (1, 2)]

    def test_path_already_reduced(self):
        g = path_dag(6)
        assert is_transitively_reduced(g)
        assert transitive_reduction(g) == g

    @pytest.mark.parametrize("seed", range(5))
    def test_preserves_reachability(self, seed):
        g = random_dag(30, 120, seed=seed)
        r = transitive_reduction(g)
        assert transitive_closure_bits(g) == transitive_closure_bits(r)

    @pytest.mark.parametrize("seed", range(5))
    def test_result_is_minimal(self, seed):
        """Removing any further edge must change reachability."""
        g = random_dag(18, 50, seed=seed)
        r = transitive_reduction(g)
        assert is_transitively_reduced(r)
        base = transitive_closure_bits(r)
        for u, v in list(r.edges()):
            h = DiGraph(r.n)
            for a, b in r.edges():
                if (a, b) != (u, v):
                    h.add_edge(a, b)
            assert transitive_closure_bits(h.freeze()) != base

    def test_redundant_edges_listed(self):
        g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])
        assert set(redundant_edges(g)) == {(0, 3), (0, 2)}

    def test_cycle_rejected(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            transitive_reduction(g)

    def test_shrinks_dense_random_dag(self):
        g = random_dag(40, 300, seed=7)
        r = transitive_reduction(g)
        assert r.m < g.m

    def test_sparse_forest_nearly_untouched(self):
        g = sparse_dag(100, 0.0, seed=8)
        r = transitive_reduction(g)
        assert r.m == g.m  # a forest has no redundant edges
