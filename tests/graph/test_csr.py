"""Tests for the flat-array (CSR) adjacency view."""

import pytest

from repro.graph.csr import CSRView, build_csr_arrays
from repro.graph.digraph import DiGraph
from repro.graph import generators as gen


def _roundtrip_ok(graph: DiGraph) -> None:
    csr = graph.csr()
    assert csr.n == graph.n
    assert csr.m == graph.m
    for u in range(graph.n):
        assert list(csr.out(u)) == list(graph.out(u))
        assert list(csr.inn(u)) == list(graph.inn(u))
        assert csr.out_degree(u) == graph.out_degree(u)
        assert csr.in_degree(u) == graph.in_degree(u)
    assert list(csr.edges()) == list(graph.edges())


class TestRoundTrip:
    def test_small_fixed_graph(self):
        g = DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        _roundtrip_ok(g)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_dags(self, seed):
        _roundtrip_ok(gen.random_dag(60, 180, seed=seed))

    def test_edgeless_and_empty(self):
        _roundtrip_ok(DiGraph(0).freeze())
        _roundtrip_ok(DiGraph(5).freeze())

    def test_out_lists_shares_graph_adjacency(self):
        g = gen.random_dag(30, 80, seed=3)
        csr = g.csr()
        assert csr.out_lists() is g.out_adj
        assert csr.in_lists() is g.in_adj

    def test_materialised_lists_match_without_graph(self):
        g = gen.random_dag(30, 80, seed=4)
        csr = CSRView(g.out_adj, g.in_adj)  # detached view
        assert csr.out_lists() == g.out_adj
        assert csr.in_lists() == g.in_adj


class TestDeterminism:
    def test_freeze_sorts_then_csr_snapshots(self):
        # Insertion order must not leak into the CSR view.
        g1 = DiGraph(3)
        g1.add_edge(0, 2)
        g1.add_edge(0, 1)
        g1.freeze()
        g2 = DiGraph(3)
        g2.add_edge(0, 1)
        g2.add_edge(0, 2)
        g2.freeze()
        assert g1.csr().out_targets == g2.csr().out_targets
        assert g1.csr().out_offsets == g2.csr().out_offsets

    def test_view_is_cached(self):
        g = gen.path_dag(5)
        assert g.csr() is g.csr()

    def test_requires_frozen(self):
        g = DiGraph(2)
        g.add_edge(0, 1)
        with pytest.raises(RuntimeError):
            g.csr()


class TestArrays:
    def test_build_csr_arrays_shapes(self):
        offs, tgts = build_csr_arrays([[1, 2], [], [0]])
        assert list(offs) == [0, 2, 2, 3]
        assert list(tgts) == [1, 2, 0]

    def test_size_bytes_positive(self):
        g = gen.random_dag(20, 40, seed=5)
        assert g.csr().size_bytes() > 0

    def test_as_numpy_zero_copy(self):
        np = pytest.importorskip("numpy")
        g = gen.random_dag(25, 60, seed=6)
        oo, ot, io, it = g.csr().as_numpy()
        assert oo.dtype == np.int64
        assert list(ot) == list(g.csr().out_targets)
        assert oo[-1] == g.m and io[-1] == g.m
