"""Tests for edge-list I/O."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.io import parse_edge_list, read_edge_list, write_edge_list
from repro.graph.generators import random_dag


class TestParse:
    def test_basic(self):
        g = parse_edge_list("0 1\n1 2\n")
        assert g.n == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_header_detected(self):
        g = parse_edge_list("10 2\n0 1\n1 2\n")
        assert g.n == 10
        assert g.m == 2

    def test_two_column_first_line_not_header(self):
        # "5 6" cannot be a header (there are 2 further lines, not 6),
        # so it is an edge.
        g = parse_edge_list("5 6\n0 1\n1 2\n")
        assert g.has_edge(5, 6)
        assert g.n == 7

    def test_comments_ignored(self):
        g = parse_edge_list("# a comment\n% another\n0 1\n")
        assert g.m == 1

    def test_blank_lines_ignored(self):
        g = parse_edge_list("\n0 1\n\n1 2\n\n")
        assert g.m == 2

    def test_self_loops_dropped(self):
        g = parse_edge_list("0 0\n0 1\n")
        assert g.m == 1

    def test_duplicate_edges_deduplicated(self):
        g = parse_edge_list("0 1\n0 1\n")
        assert g.m == 1

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_edge_list("0 1\nbroken\n".replace("broken", "7"))

    def test_negative_id_raises(self):
        with pytest.raises(ValueError):
            parse_edge_list("0 1\n-1 2\n")

    def test_empty_input(self):
        g = parse_edge_list("")
        assert g.n == 0 and g.m == 0


class TestRoundTrip:
    def test_write_read_identity(self, tmp_path):
        g = random_dag(40, 90, seed=1)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        h = read_edge_list(path)
        assert h == g

    def test_write_without_header(self, tmp_path):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path, header=False)
        text = path.read_text()
        assert text.splitlines()[0] == "0 1"
        assert read_edge_list(path) == g

    def test_header_written(self, tmp_path):
        g = DiGraph.from_edges(4, [(0, 3)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert path.read_text().splitlines()[0] == "4 1"
