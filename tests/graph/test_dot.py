"""Tests for the DOT exporter."""

from repro.graph.digraph import DiGraph
from repro.graph.dot import to_dot
from repro.graph.generators import path_dag


class TestDot:
    def test_contains_all_edges_and_vertices(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        dot = to_dot(g)
        assert dot.startswith("digraph G {")
        assert "0 -> 1;" in dot and "1 -> 2;" in dot
        assert "2 [" in dot

    def test_custom_labels(self):
        g = path_dag(2)
        dot = to_dot(g, vertex_labels={0: "src", 1: "dst"})
        assert 'label="src"' in dot and 'label="dst"' in dot

    def test_levels_colouring(self):
        g = path_dag(3)
        dot = to_dot(g, levels=[0, 1, 2])
        assert "fillcolor" in dot
        assert "fontcolor" in dot  # level >= 2 switches font colour

    def test_highlight_edges(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        dot = to_dot(g, highlight_edges=[(1, 2)])
        assert "1 -> 2 [color=red" in dot
        assert "0 -> 1;" in dot

    def test_custom_name(self):
        assert to_dot(path_dag(1), name="Backbone").startswith("digraph Backbone")

    def test_deep_levels_clamped(self):
        g = path_dag(9)
        dot = to_dot(g, levels=list(range(9)))  # more levels than colours
        assert dot.count("fillcolor") == 9
