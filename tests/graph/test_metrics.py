"""Tests for graph metrics."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.metrics import compute_metrics, reachability_density
from repro.graph.generators import (
    complete_bipartite_dag,
    path_dag,
    random_dag,
    star_dag,
)


class TestReachabilityDensity:
    def test_exact_on_path(self):
        value, exact = reachability_density(path_dag(4))
        assert exact
        assert value == (4 + 3 + 2 + 1) / 4

    def test_estimate_on_large_graph(self):
        g = random_dag(6000, 12000, seed=1)
        est, exact = reachability_density(g, exact_threshold=100, samples=300, seed=2)
        assert not exact
        truth, _ = reachability_density(g, exact_threshold=10_000)
        assert abs(est - truth) / truth < 0.5  # sampled, coarse bound

    def test_empty(self):
        assert reachability_density(DiGraph(0)) == (0.0, True)


class TestComputeMetrics:
    def test_path(self):
        m = compute_metrics(path_dag(5))
        assert m.n == 5 and m.m == 4
        assert m.sources == 1 and m.sinks == 1
        assert m.depth == 4
        assert m.isolated == 0

    def test_star(self):
        m = compute_metrics(star_dag(9, out=True))
        assert m.max_out_degree == 8
        assert m.sinks == 8

    def test_isolated_counted(self):
        g = DiGraph(4)
        g.add_edge(0, 1)
        m = compute_metrics(g.freeze())
        assert m.isolated == 2

    def test_bipartite_closure(self):
        m = compute_metrics(complete_bipartite_dag(3, 3))
        # sources: 1 (self) + 3 sinks reached; sinks: just themselves.
        assert m.avg_closure == (3 * 4 + 3 * 1) / 6

    def test_cycle_rejected(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            compute_metrics(g)

    def test_as_dict_roundtrip_fields(self):
        d = compute_metrics(path_dag(3)).as_dict()
        for key in ("n", "m", "density", "depth", "avg_closure", "closure_exact"):
            assert key in d
