"""Tests for the reference transitive closure."""

import random

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.closure import (
    bitset_to_list,
    closure_pairs_count,
    reverse_transitive_closure_bits,
    sample_reachable_pair,
    tc_size,
    transitive_closure_bits,
)
from repro.graph.generators import complete_bipartite_dag, path_dag, random_dag


class TestForwardClosure:
    def test_path(self):
        tc = transitive_closure_bits(path_dag(4))
        assert bitset_to_list(tc[0]) == [0, 1, 2, 3]
        assert bitset_to_list(tc[3]) == [3]

    def test_reflexive(self):
        tc = transitive_closure_bits(DiGraph(3))
        for v in range(3):
            assert tc[v] == 1 << v

    def test_cycle_raises(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            transitive_closure_bits(g)

    def test_agrees_with_bfs(self):
        from repro.graph.traversal import bfs_reachable

        g = random_dag(35, 80, seed=1)
        tc = transitive_closure_bits(g)
        for u in range(35):
            assert bitset_to_list(tc[u]) == sorted(bfs_reachable(g.out_adj, u))


class TestReverseClosure:
    def test_reverse_is_transpose(self):
        g = random_dag(30, 70, seed=2)
        tc = transitive_closure_bits(g)
        rtc = reverse_transitive_closure_bits(g)
        for u in range(30):
            for v in range(30):
                assert ((tc[u] >> v) & 1) == ((rtc[v] >> u) & 1)


class TestSizes:
    def test_tc_size_includes_reflexive(self):
        assert tc_size(transitive_closure_bits(path_dag(3))) == 3 + 2 + 1

    def test_closure_pairs_count_strict(self):
        assert closure_pairs_count(path_dag(4)) == 3 + 2 + 1

    def test_bipartite_counts(self):
        # Each of the 3 sources reaches the 4 sinks.
        assert closure_pairs_count(complete_bipartite_dag(3, 4)) == 12


class TestBitsetToList:
    def test_empty(self):
        assert bitset_to_list(0) == []

    def test_multiword(self):
        positions = [0, 63, 64, 127, 128, 300]
        bits = 0
        for p in positions:
            bits |= 1 << p
        assert bitset_to_list(bits) == positions


class TestSampling:
    def test_samples_are_reachable(self):
        g = random_dag(40, 120, seed=3)
        tc = transitive_closure_bits(g)
        rng = random.Random(0)
        for _ in range(50):
            pair = sample_reachable_pair(tc, rng, g.n)
            assert pair is not None
            u, v = pair
            assert u != v
            assert (tc[u] >> v) & 1

    def test_edgeless_graph_returns_none(self):
        g = DiGraph(5)
        tc = transitive_closure_bits(g)
        assert sample_reachable_pair(tc, random.Random(0), 5) is None
