"""Tests for traversal primitives."""

from repro.graph.digraph import DiGraph
from repro.graph.traversal import (
    bfs_reachable,
    bfs_reaches,
    bfs_within,
    collect_targets_within,
    neighborhood_within,
)
from repro.graph.generators import path_dag, random_dag, star_dag


class TestBfsReachable:
    def test_path(self):
        g = path_dag(5)
        assert bfs_reachable(g.out_adj, 0) == [0, 1, 2, 3, 4]

    def test_includes_source_only_when_isolated(self):
        g = DiGraph(3)
        assert bfs_reachable(g.out_adj, 1) == [1]

    def test_star(self):
        g = star_dag(5, out=True)
        assert set(bfs_reachable(g.out_adj, 0)) == {0, 1, 2, 3, 4}
        assert bfs_reachable(g.out_adj, 2) == [2]

    def test_matches_closure(self):
        from repro.graph.closure import bitset_to_list, transitive_closure_bits

        g = random_dag(30, 70, seed=2)
        tc = transitive_closure_bits(g)
        for u in range(30):
            assert sorted(bfs_reachable(g.out_adj, u)) == bitset_to_list(tc[u])


class TestBfsReaches:
    def test_reflexive(self):
        g = path_dag(3)
        assert bfs_reaches(g.out_adj, 1, 1)

    def test_forward_only(self):
        g = path_dag(4)
        assert bfs_reaches(g.out_adj, 0, 3)
        assert not bfs_reaches(g.out_adj, 3, 0)

    def test_disconnected(self):
        g = DiGraph.from_edges(4, [(0, 1), (2, 3)])
        assert not bfs_reaches(g.out_adj, 0, 3)


class TestBoundedBfs:
    def test_depth_zero(self):
        g = path_dag(4)
        assert bfs_within(g.out_adj, 0, 0) == {0: 0}

    def test_depth_limits(self):
        g = path_dag(6)
        assert bfs_within(g.out_adj, 0, 2) == {0: 0, 1: 1, 2: 2}

    def test_distances_are_shortest(self):
        # 0->2 direct and 0->1->2: distance to 2 must be 1.
        g = DiGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert bfs_within(g.out_adj, 0, 3)[2] == 1

    def test_neighborhood_within_sorted(self):
        g = random_dag(25, 60, seed=3)
        nb = neighborhood_within(g.out_adj, 0, 2)
        assert nb == sorted(nb)
        assert 0 in nb

    def test_reverse_direction_via_in_adj(self):
        g = path_dag(5)
        assert bfs_within(g.in_adj, 4, 2) == {4: 0, 3: 1, 2: 2}


class TestCollectTargets:
    def test_collects_only_targets(self):
        g = path_dag(6)
        targets = {2, 4}
        found = collect_targets_within(g.out_adj, 0, 4, lambda v: v in targets)
        assert found == {2: 2, 4: 4}

    def test_source_included_when_target(self):
        g = path_dag(3)
        found = collect_targets_within(g.out_adj, 1, 1, lambda v: True)
        assert found[1] == 0
