"""Tests for topological utilities."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.topo import (
    is_dag,
    longest_path_length,
    topological_levels,
    topological_order,
)
from repro.graph.generators import layered_dag, path_dag, random_dag


class TestTopologicalOrder:
    def test_respects_edges(self):
        g = random_dag(50, 120, seed=3)
        order = topological_order(g)
        pos = {v: i for i, v in enumerate(order)}
        for u, v in g.edges():
            assert pos[u] < pos[v]

    def test_cycle_returns_none(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert topological_order(g) is None

    def test_covers_all_vertices(self):
        g = random_dag(30, 60, seed=4)
        assert sorted(topological_order(g)) == list(range(30))

    def test_empty_graph(self):
        assert topological_order(DiGraph(0)) == []

    def test_edgeless_graph_id_order(self):
        assert topological_order(DiGraph(4)) == [0, 1, 2, 3]

    def test_deterministic(self):
        g = random_dag(40, 100, seed=5)
        assert topological_order(g) == topological_order(g)


class TestIsDag:
    def test_dag(self):
        assert is_dag(path_dag(5))

    def test_cycle(self):
        assert not is_dag(DiGraph.from_edges(2, [(0, 1), (1, 0)]))

    def test_empty(self):
        assert is_dag(DiGraph(0))


class TestLevels:
    def test_path_levels_increase(self):
        levels = topological_levels(path_dag(6))
        assert levels == [0, 1, 2, 3, 4, 5]

    def test_levels_are_longest_paths(self):
        # 0->1->3 and 0->2, 2 has level 1 but 3 has level 2.
        g = DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert topological_levels(g) == [0, 1, 1, 2]

    def test_reachability_implies_level_increase(self):
        from repro.graph.traversal import bfs_reaches

        g = random_dag(40, 100, seed=6)
        levels = topological_levels(g)
        for u in range(0, 40, 3):
            for v in range(0, 40, 5):
                if u != v and bfs_reaches(g.out_adj, u, v):
                    assert levels[u] < levels[v]

    def test_cycle_raises(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            topological_levels(g)

    def test_layered_dag_levels_match_layers(self):
        g = layered_dag(4, 3, 2, seed=0)
        levels = topological_levels(g)
        for v in range(g.n):
            # Every vertex's level can be at most its layer index.
            assert levels[v] <= v // 3


class TestLongestPath:
    def test_path(self):
        assert longest_path_length(path_dag(7)) == 6

    def test_empty(self):
        assert longest_path_length(DiGraph(0)) == 0

    def test_edgeless(self):
        assert longest_path_length(DiGraph(5)) == 0
