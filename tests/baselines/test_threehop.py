"""Tests for the 3-HOP chain-contour baseline."""

import pytest

from repro.baselines.threehop import ThreeHop
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_dag, random_dag, sparse_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


class TestCorrectness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth(self, graph):
        assert_matches_truth(ThreeHop(graph), graph)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags(self, seed):
        g = random_dag(35, 85, seed=seed)
        assert_matches_truth(ThreeHop(g), g)


class TestStructure:
    def test_single_chain_one_entry_each(self):
        th = ThreeHop(path_dag(20))
        assert th.stats()["chains"] == 1
        assert all(len(c) == 1 for c in th._ent_chains)
        assert all(len(c) == 1 for c in th._ex_chains)

    def test_entry_exit_contours_sound(self):
        """Entry positions are truly reachable; exits truly reach."""
        from repro.graph.closure import (
            reverse_transitive_closure_bits,
            transitive_closure_bits,
        )

        g = random_dag(30, 70, seed=3)
        th = ThreeHop(g)
        tc = transitive_closure_bits(g)
        # Rebuild chain membership to decode (chain, pos) -> vertex.
        chain_members = {}
        for v in range(g.n):
            chain_members[(th._chain_of[v], th._pos_of[v])] = v
        for u in range(g.n):
            for cid, pos in zip(th._ent_chains[u], th._ent_pos[u]):
                w = chain_members[(cid, pos)]
                assert (tc[u] >> w) & 1
        rtc = reverse_transitive_closure_bits(g)
        for v in range(g.n):
            for cid, pos in zip(th._ex_chains[v], th._ex_pos[v]):
                w = chain_members[(cid, pos)]
                assert (rtc[v] >> w) & 1

    def test_storage_budget_trips(self):
        g = random_dag(200, 2000, seed=4)
        with pytest.raises(MemoryError):
            ThreeHop(g, max_storage_ints=50)

    def test_cycle_rejected(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            ThreeHop(g)

    def test_registered(self):
        from repro.core.base import get_method

        assert get_method("3HOP") is ThreeHop

    def test_forest_contours_compact(self):
        g = sparse_dag(200, 0.0, seed=5)
        th = ThreeHop(g)
        # On a forest each vertex's ancestor set is a path: the exit
        # contour holds a handful of chains, not O(n).
        avg_exit = sum(len(c) for c in th._ex_chains) / g.n
        assert avg_exit < 8
