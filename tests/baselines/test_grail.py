"""Tests for GRAIL."""

import pytest

from repro.baselines.grail import Grail
from repro.graph.closure import transitive_closure_bits
from repro.graph.generators import path_dag, random_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


class TestCorrectness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth(self, graph):
        assert_matches_truth(Grail(graph), graph)

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_any_k_is_correct(self, k):
        g = random_dag(35, 85, seed=2)
        assert_matches_truth(Grail(g, k=k), g)

    @pytest.mark.parametrize("seed", range(4))
    def test_seeds(self, seed):
        g = random_dag(30, 70, seed=7)
        assert_matches_truth(Grail(g, seed=seed), g)


class TestIntervals:
    def test_containment_necessary_condition(self):
        """u reaches v => v's interval nested in u's in every round."""
        g = random_dag(40, 100, seed=3)
        gl = Grail(g, k=3)
        tc = transitive_closure_bits(g)
        for u in range(g.n):
            for v in range(g.n):
                if (tc[u] >> v) & 1:
                    assert gl._contained(u, v)

    def test_interval_is_own_post_bounds(self):
        g = path_dag(6)
        gl = Grail(g, k=1)
        low, post = gl._lows[0], gl._posts[0]
        for v in range(6):
            assert low[v] <= post[v]

    def test_index_size_scales_with_k(self):
        g = random_dag(30, 60, seed=4)
        assert Grail(g, k=4).index_size_ints() > Grail(g, k=2).index_size_ints()


class TestPruning:
    def test_interval_filter_rejects_most_negatives_on_tree(self):
        """On a forest the interval test alone decides every query,
        so negative queries must not expand any DFS nodes (we can only
        observe correctness + speed indirectly: exactness)."""
        from repro.graph.generators import sparse_dag

        g = sparse_dag(60, 0.0, seed=5)
        assert_matches_truth(Grail(g), g)
