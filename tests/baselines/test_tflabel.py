"""Tests for the TF-label baseline (HL with ε = 1)."""

import pytest

from repro.baselines.tflabel import TFLabel
from repro.graph.generators import random_dag, sparse_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


class TestCorrectness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth(self, graph):
        assert_matches_truth(TFLabel(graph), graph)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_dags(self, seed):
        g = random_dag(30, 70, seed=seed)
        assert_matches_truth(TFLabel(g), g)


class TestSpecialCaseOfHL:
    def test_uses_eps1_hierarchy(self):
        g = random_dag(80, 200, seed=2)
        tf = TFLabel(g, core_limit=8)
        assert tf.hierarchy.eps == 1

    def test_short_name(self):
        g = sparse_dag(30, 0.1, seed=3)
        assert TFLabel(g).short_name == "TF"

    def test_eps_override_is_ignored(self):
        # The TF identity is eps=1; a caller cannot change it.
        g = random_dag(40, 90, seed=4)
        tf = TFLabel(g, eps=2)
        assert tf.hierarchy.eps == 1
