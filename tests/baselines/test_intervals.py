"""Tests for the IntervalSet substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.intervals import IntervalSet

sorted_ints = st.lists(st.integers(0, 300), max_size=60).map(
    lambda xs: sorted(set(xs))
)


class TestFromSortedInts:
    def test_paper_example(self):
        s = IntervalSet.from_sorted_ints([1, 2, 3, 4, 8, 9, 10])
        assert list(s.intervals()) == [(1, 4), (8, 10)]

    def test_singletons(self):
        s = IntervalSet.from_sorted_ints([0, 2, 4])
        assert list(s.intervals()) == [(0, 0), (2, 2), (4, 4)]

    def test_empty(self):
        s = IntervalSet.from_sorted_ints([])
        assert len(s) == 0
        assert 0 not in s

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            IntervalSet.from_sorted_ints([3, 1])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            IntervalSet.from_sorted_ints([1, 1])

    @given(sorted_ints)
    @settings(max_examples=200)
    def test_roundtrip(self, xs):
        assert IntervalSet.from_sorted_ints(xs).to_sorted_ints() == xs


class TestMembership:
    @given(sorted_ints, st.integers(0, 300))
    @settings(max_examples=200)
    def test_contains_matches_set(self, xs, probe):
        s = IntervalSet.from_sorted_ints(xs)
        assert (probe in s) == (probe in set(xs))

    def test_boundaries(self):
        s = IntervalSet.from_sorted_ints([5, 6, 7])
        assert 5 in s and 7 in s
        assert 4 not in s and 8 not in s


class TestUnionMerge:
    @given(st.lists(sorted_ints, max_size=5))
    @settings(max_examples=150)
    def test_matches_set_union(self, lists):
        sets = [IntervalSet.from_sorted_ints(xs) for xs in lists]
        merged = IntervalSet.union_merge(sets)
        expected = sorted(set().union(*map(set, lists))) if lists else []
        assert merged.to_sorted_ints() == expected

    def test_adjacent_intervals_coalesce(self):
        a = IntervalSet.from_sorted_ints([1, 2])
        b = IntervalSet.from_sorted_ints([3, 4])
        assert list(IntervalSet.union_merge([a, b]).intervals()) == [(1, 4)]

    def test_empty_inputs(self):
        assert IntervalSet.union_merge([]).to_sorted_ints() == []


class TestAddPoint:
    @given(sorted_ints, st.integers(0, 300))
    @settings(max_examples=200)
    def test_matches_set_insert(self, xs, v):
        s = IntervalSet.from_sorted_ints(xs)
        s.add_point(v)
        assert s.to_sorted_ints() == sorted(set(xs) | {v})

    def test_bridges_two_intervals(self):
        s = IntervalSet.from_sorted_ints([1, 3])
        s.add_point(2)
        assert list(s.intervals()) == [(1, 3)]

    def test_extends_left_and_right(self):
        s = IntervalSet.from_sorted_ints([5])
        s.add_point(4)
        s.add_point(6)
        assert list(s.intervals()) == [(4, 6)]

    def test_noop_when_covered(self):
        s = IntervalSet.from_sorted_ints([1, 2, 3])
        s.add_point(2)
        assert list(s.intervals()) == [(1, 3)]


class TestAccounting:
    def test_cardinality(self):
        s = IntervalSet.from_sorted_ints([1, 2, 3, 7])
        assert s.cardinality() == 4

    def test_storage_ints(self):
        s = IntervalSet.from_sorted_ints([1, 2, 3, 7])
        assert s.storage_ints() == 4  # two intervals

    def test_equality(self):
        a = IntervalSet.from_sorted_ints([1, 2])
        b = IntervalSet.from_sorted_ints([1, 2])
        assert a == b

    def test_repr_truncates(self):
        s = IntervalSet.from_sorted_ints([0, 2, 4, 6, 8, 10])
        assert "…" in repr(s)

    def test_mismatched_init_raises(self):
        with pytest.raises(ValueError):
            IntervalSet([1], [])
