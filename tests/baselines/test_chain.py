"""Tests for chain compression."""

import pytest

from repro.baselines.chain import ChainCompression
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_dag, random_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


class TestCorrectness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth(self, graph):
        assert_matches_truth(ChainCompression(graph), graph)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_dags(self, seed):
        g = random_dag(30, 70, seed=seed)
        assert_matches_truth(ChainCompression(g), g)


class TestStructure:
    def test_single_chain_one_entry_per_vertex(self):
        g = path_dag(20)
        ch = ChainCompression(g)
        assert ch.stats()["chains"] == 1
        # Each vertex records exactly one (chain, pos) entry.
        assert all(len(k) == 1 for k in ch._first_keys)

    def test_cycle_rejected(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            ChainCompression(g)

    def test_index_size_accounting(self):
        g = path_dag(5)
        ch = ChainCompression(g)
        # 5 single entries (2 ints each) + (chain,pos) per vertex.
        assert ch.index_size_ints() == 2 * 5 + 2 * 5
