"""Tests for IS-Label."""

import pytest

from repro.baselines.islabel import ISLabel
from repro.graph.digraph import DiGraph
from repro.graph.generators import layered_dag, path_dag, random_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS
from .test_pruned_landmark import bfs_distance


class TestReachability:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth(self, graph):
        assert_matches_truth(ISLabel(graph), graph)

    @pytest.mark.parametrize("core_limit", [1, 4, 16, 1000])
    def test_any_core_limit(self, core_limit):
        g = random_dag(35, 85, seed=2)
        assert_matches_truth(ISLabel(g, core_limit=core_limit), g)


class TestDistances:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_distances(self, seed):
        g = random_dag(28, 64, seed=seed)
        isl = ISLabel(g, core_limit=5)
        for u in range(g.n):
            for v in range(g.n):
                assert isl.distance(u, v) == bfs_distance(g, u, v)

    def test_path(self):
        isl = ISLabel(path_dag(14), core_limit=3)
        for u in range(14):
            for v in range(u, 14):
                assert isl.distance(u, v) == v - u

    def test_layered(self):
        g = layered_dag(5, 4, 2, seed=3)
        isl = ISLabel(g, core_limit=4)
        for u in range(0, g.n, 2):
            for v in range(0, g.n, 3):
                assert isl.distance(u, v) == bfs_distance(g, u, v)

    def test_unreachable_none(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        isl = ISLabel(g.freeze())
        assert isl.distance(1, 2) is None
        assert isl.distance(0, 0) == 0


class TestStructure:
    def test_cycle_rejected(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            ISLabel(g)

    def test_storage_budget_trips(self):
        g = random_dag(120, 700, seed=4)
        with pytest.raises(MemoryError):
            ISLabel(g, max_storage_ints=40)

    def test_registered(self):
        from repro.core.base import get_method

        assert get_method("ISL") is ISLabel

    def test_labels_sorted(self):
        g = random_dag(40, 90, seed=5)
        isl = ISLabel(g, core_limit=6)
        for arrs in (isl._lout_h, isl._lin_h):
            for hs in arrs:
                assert hs == sorted(hs)

    def test_queries_slower_than_dl_labels_bigger(self):
        """The §6.1 claim in miniature: ISL labels dwarf DL's."""
        from repro.core.distribution import DistributionLabeling

        g = random_dag(300, 900, seed=6)
        isl = ISLabel(g, core_limit=16)
        dl = DistributionLabeling(g)
        assert isl.index_size_ints() > 2 * dl.index_size_ints()
