"""Tests for Dual Labeling."""

import pytest

from repro.baselines.dual import DualLabeling
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_dag, random_dag, sparse_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


class TestCorrectness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth(self, graph):
        assert_matches_truth(DualLabeling(graph), graph)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags(self, seed):
        g = random_dag(35, 90, seed=seed)
        assert_matches_truth(DualLabeling(g), g)


class TestStructure:
    def test_forest_has_zero_links(self):
        g = sparse_dag(120, 0.0, seed=1)
        dual = DualLabeling(g)
        assert dual.stats()["links"] == 0
        # Pure-tree index: just the intervals.
        assert dual.index_size_ints() == 2 * g.n

    def test_link_count_matches_nontree_edges(self):
        g = random_dag(50, 120, seed=2)
        dual = DualLabeling(g)
        tree_edges = sum(1 for v in range(g.n) if g.in_degree(v) > 0)
        assert dual.stats()["links"] == g.m - tree_edges

    def test_link_budget_trips(self):
        g = random_dag(60, 400, seed=3)
        with pytest.raises(MemoryError):
            DualLabeling(g, max_links=5)

    def test_path_graph_tree_only(self):
        dual = DualLabeling(path_dag(25))
        assert dual.stats()["links"] == 0
        assert dual.query(0, 24)
        assert not dual.query(10, 3)

    def test_cycle_rejected(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            DualLabeling(g)

    def test_registered(self):
        from repro.core.base import get_method

        assert get_method("DUAL") is DualLabeling

    def test_diamond_produces_one_link(self):
        # 0->{1,2}->3: vertex 3 keeps one tree parent, the other edge
        # becomes a link; queries must route through it.
        g = DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        dual = DualLabeling(g)
        assert dual.stats()["links"] == 1
        assert dual.query(0, 3) and dual.query(2, 3) and dual.query(1, 3)
        assert not dual.query(1, 2)

    def test_link_chain_transitivity(self):
        # Three chains joined by two links that must compose.
        g = DiGraph.from_edges(
            9,
            [(0, 1), (1, 2), (3, 4), (4, 5), (6, 7), (7, 8),
             (2, 4), (5, 7)],  # cross edges; (2,4) and (5,7) may be links
        )
        dual = DualLabeling(g)
        assert dual.query(0, 8)
        assert dual.query(2, 6) is False
        assert dual.query(3, 8)
