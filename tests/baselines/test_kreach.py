"""Tests for K-Reach."""

import pytest

from repro.baselines.kreach import KReach
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


class TestCorrectness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth(self, graph):
        assert_matches_truth(KReach(graph), graph)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags(self, seed):
        g = random_dag(35, 85, seed=seed)
        assert_matches_truth(KReach(g), g)


class TestCoverStructure:
    def test_cover_is_vertex_cover(self):
        g = random_dag(50, 120, seed=2)
        kr = KReach(g)
        cover = set(kr._cover)
        for u, v in g.edges():
            assert u in cover or v in cover

    def test_noncover_vertices_have_cover_neighbours(self):
        g = random_dag(40, 100, seed=3)
        kr = KReach(g)
        cover = set(kr._cover)
        for v in range(g.n):
            if v in cover:
                continue
            assert all(u in cover for u in g.inn(v))
            assert all(w in cover for w in g.out(v))

    def test_stats(self):
        g = random_dag(30, 70, seed=4)
        stats = KReach(g).stats()
        assert 0 < stats["cover_size"] <= g.n
        assert stats["cover_tc_entries"] >= stats["cover_size"]


class TestBudget:
    def test_budget_trips_like_paper_dnf(self):
        g = random_dag(100, 300, seed=5)
        with pytest.raises(MemoryError):
            KReach(g, max_cover_closure_bits=16)

    def test_edgeless_graph(self):
        g = DiGraph(4)
        kr = KReach(g.freeze())
        assert kr.query(0, 0)
        assert not kr.query(0, 1)
