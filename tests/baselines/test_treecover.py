"""Tests for the Agrawal tree-cover baseline."""

import pytest

from repro.baselines.treecover import TreeCover
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_dag, random_dag, sparse_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


class TestCorrectness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth(self, graph):
        assert_matches_truth(TreeCover(graph), graph)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags(self, seed):
        g = random_dag(35, 85, seed=seed)
        assert_matches_truth(TreeCover(g), g)


class TestStructure:
    def test_tree_interval_covers_subtree(self):
        g = sparse_dag(80, 0.0, seed=2)  # a forest: tree == graph
        tc = TreeCover(g)
        # On a forest, the O(1) interval test alone must decide
        # positives: every reachable pair is a tree-descendant pair.
        from repro.graph.closure import transitive_closure_bits

        closure = transitive_closure_bits(g)
        for u in range(g.n):
            for v in range(g.n):
                if (closure[u] >> v) & 1:
                    assert tc._low[u] <= tc._post[v] <= tc._post[u]

    def test_registered(self):
        from repro.core.base import get_method

        assert get_method("TREE") is TreeCover

    def test_storage_budget_trips(self):
        g = random_dag(200, 2000, seed=3)
        with pytest.raises(MemoryError):
            TreeCover(g, max_storage_ints=50)

    def test_cycle_rejected(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            TreeCover(g)

    def test_index_size_positive(self):
        assert TreeCover(path_dag(10)).index_size_ints() > 0
