"""Tests for the 2HOP set-cover baseline."""

import pytest

from repro.baselines.twohop import TwoHop
from repro.graph.closure import transitive_closure_bits
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_bipartite_dag, random_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


class TestCorrectness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth(self, graph):
        assert_matches_truth(TwoHop(graph), graph)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags(self, seed):
        g = random_dag(30, 70, seed=seed)
        assert_matches_truth(TwoHop(g), g)


class TestLabels:
    def test_labels_sorted(self):
        g = random_dag(40, 90, seed=2)
        assert TwoHop(g).labels.check_sorted()

    def test_hops_sound(self):
        g = random_dag(30, 70, seed=3)
        th = TwoHop(g)
        tc = transitive_closure_bits(g)
        for u in range(g.n):
            for h in th.labels.lout[u]:
                assert (tc[u] >> h) & 1
            for h in th.labels.lin[u]:
                assert (tc[h] >> u) & 1

    def test_bipartite_greedy_near_floor(self):
        # K(8,8): every hop covers at most 8 pairs, so >= 8 hops and
        # about 8 + 64 label entries are unavoidable; greedy should not
        # exceed that floor by much.
        g = complete_bipartite_dag(8, 8)
        th = TwoHop(g)
        assert th.index_size_ints() <= 8 + 64 + g.n


class TestBudgets:
    def test_tc_bits_budget(self):
        g = random_dag(100, 200, seed=4)
        with pytest.raises(MemoryError):
            TwoHop(g, max_tc_bits=100)

    def test_tc_pairs_budget(self):
        g = random_dag(60, 400, seed=5)
        with pytest.raises(MemoryError):
            TwoHop(g, max_tc_pairs=10)

    def test_empty_graph(self):
        th = TwoHop(DiGraph(0))
        assert th.index_size_ints() == 0

    def test_edgeless_graph_no_labels(self):
        g = DiGraph(5).freeze()
        th = TwoHop(g)
        assert th.index_size_ints() == 0
        assert th.query(2, 2)
        assert not th.query(0, 1)
