"""Tests for the online-search baselines (BFS/DFS)."""

import pytest

from repro.baselines.online import OnlineBFS, OnlineDFS
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


@pytest.mark.parametrize("cls", [OnlineBFS, OnlineDFS])
class TestCorrectness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth(self, cls, graph):
        assert_matches_truth(cls(graph), graph)

    def test_reflexive(self, cls):
        g = random_dag(10, 20, seed=1)
        idx = cls(g)
        for v in range(10):
            assert idx.query(v, v)

    def test_visited_scratch_resets_between_queries(self, cls):
        g = DiGraph.from_edges(4, [(0, 1), (1, 2), (0, 3)])
        idx = cls(g)
        assert idx.query(0, 2)
        assert idx.query(0, 2)  # same answer on reuse
        assert not idx.query(3, 2)
        assert idx.query(0, 3)

    def test_index_size_is_levels_only(self, cls):
        g = random_dag(25, 50, seed=2)
        assert cls(g).index_size_ints() == 25
