"""Tests for Pruned Landmark labeling (reachability + exact distances)."""

import pytest

from repro.baselines.pruned_landmark import PrunedLandmark
from repro.graph.digraph import DiGraph
from repro.graph.generators import layered_dag, path_dag, random_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


def bfs_distance(graph, u, v):
    if u == v:
        return 0
    from collections import deque

    dist = {u: 0}
    q = deque([u])
    while q:
        x = q.popleft()
        for w in graph.out(x):
            if w not in dist:
                dist[w] = dist[x] + 1
                if w == v:
                    return dist[w]
                q.append(w)
    return None


class TestReachability:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth(self, graph):
        assert_matches_truth(PrunedLandmark(graph), graph)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_dags(self, seed):
        g = random_dag(30, 70, seed=seed)
        assert_matches_truth(PrunedLandmark(g), g)


class TestDistances:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_distances_random(self, seed):
        g = random_dag(25, 60, seed=seed)
        pl = PrunedLandmark(g)
        for u in range(g.n):
            for v in range(g.n):
                assert pl.distance(u, v) == bfs_distance(g, u, v)

    def test_path_distances(self):
        g = path_dag(12)
        pl = PrunedLandmark(g)
        for u in range(12):
            for v in range(u, 12):
                assert pl.distance(u, v) == v - u

    def test_layered_distances(self):
        g = layered_dag(5, 4, 2, seed=1)
        pl = PrunedLandmark(g)
        for u in range(0, g.n, 3):
            for v in range(0, g.n, 2):
                assert pl.distance(u, v) == bfs_distance(g, u, v)

    def test_unreachable_distance_none(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        pl = PrunedLandmark(g)
        assert pl.distance(1, 2) is None
        assert pl.distance(2, 0) is None

    def test_self_distance_zero(self):
        pl = PrunedLandmark(path_dag(3))
        assert pl.distance(1, 1) == 0


class TestKReachQueries:
    @pytest.mark.parametrize("seed", range(3))
    def test_k_reach_matches_bfs_distance(self, seed):
        g = random_dag(25, 55, seed=seed)
        pl = PrunedLandmark(g)
        for u in range(0, g.n, 2):
            for v in range(0, g.n, 3):
                d = bfs_distance(g, u, v)
                for k in (0, 1, 2, 5):
                    expected = d is not None and d <= k
                    assert pl.k_reach(u, v, k) == expected

    def test_k_reach_on_path(self):
        pl = PrunedLandmark(path_dag(8))
        assert pl.k_reach(0, 4, 4)
        assert not pl.k_reach(0, 4, 3)
        assert pl.k_reach(3, 3, 0)

    def test_k_infinity_equals_reachability(self):
        g = random_dag(20, 45, seed=9)
        pl = PrunedLandmark(g)
        for u in range(g.n):
            for v in range(g.n):
                assert pl.k_reach(u, v, g.n) == pl.query(u, v)


class TestLabels:
    def test_index_size_counts_hops_and_distances(self):
        g = path_dag(6)
        pl = PrunedLandmark(g)
        assert pl.index_size_ints() > 0
        # Every vertex labels itself in both directions: >= 4n ints.
        assert pl.index_size_ints() >= 4 * g.n

    def test_hop_lists_sorted(self):
        g = random_dag(30, 70, seed=5)
        pl = PrunedLandmark(g)
        for hs in pl._lout_h + pl._lin_h:
            assert hs == sorted(hs)
