"""Tests for the PWAH-8 codec and index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pwah import Pwah8, PwahBitVector
from repro.graph.generators import path_dag, random_dag

from ..conftest import assert_matches_truth

positions = st.lists(st.integers(0, 600), max_size=80).map(
    lambda xs: sorted(set(xs))
)


class TestCodecRoundtrip:
    @given(positions)
    @settings(max_examples=200)
    def test_encode_decode_identity(self, xs):
        vec = PwahBitVector.encode(xs, 601)
        assert vec.decode() == xs

    @given(positions, st.integers(0, 600))
    @settings(max_examples=200)
    def test_contains_matches_set(self, xs, probe):
        vec = PwahBitVector.encode(xs, 601)
        assert vec.contains(probe) == (probe in set(xs))

    def test_empty(self):
        vec = PwahBitVector.encode([], 100)
        assert vec.decode() == []
        assert not vec.contains(0)

    def test_out_of_universe_probe(self):
        vec = PwahBitVector.encode([5], 10)
        assert not vec.contains(10)
        assert not vec.contains(-1)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            PwahBitVector.encode([3, 1], 10)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PwahBitVector.encode([10], 10)


class TestCodecCompression:
    def test_long_one_fill_is_compact(self):
        # 560 consecutive positions = 80 full blocks -> a couple of words.
        vec = PwahBitVector.encode(list(range(560)), 1000)
        assert vec.word_count() <= 2

    def test_long_zero_gap_is_compact(self):
        vec = PwahBitVector.encode([0, 999], 1000)
        assert vec.word_count() <= 2

    def test_scattered_literals_cost_more(self):
        dense_gap = PwahBitVector.encode(list(range(0, 700, 14)), 1000)
        contiguous = PwahBitVector.encode(list(range(50)), 1000)
        assert contiguous.word_count() < dense_gap.word_count()

    def test_very_long_run_multiple_fill_partitions(self):
        # > 63 blocks forces chained fill partitions; still correct.
        n = 7 * 64 * 3
        vec = PwahBitVector.encode(list(range(n)), n + 10)
        assert vec.decode() == list(range(n))


class TestBitsetEncoder:
    @given(positions)
    @settings(max_examples=150)
    def test_matches_position_encoder(self, xs):
        bits = 0
        for p in xs:
            bits |= 1 << p
        a = PwahBitVector.encode(xs, 601)
        b = PwahBitVector.encode_bitset(bits, 601)
        assert a.words == b.words
        assert b.decode() == xs

    def test_zero_bitset(self):
        assert PwahBitVector.encode_bitset(0, 50).decode() == []

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            PwahBitVector.encode_bitset(1 << 10, 10)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PwahBitVector.encode_bitset(-1, 10)


class TestPwah8Index:
    def test_correct_on_random_dag(self):
        g = random_dag(40, 100, seed=1)
        assert_matches_truth(Pwah8(g), g)

    def test_correct_on_path(self):
        g = path_dag(20)
        assert_matches_truth(Pwah8(g), g)

    def test_index_size_positive(self):
        g = random_dag(30, 60, seed=2)
        assert Pwah8(g).index_size_ints() > 0

    def test_cycle_rejected(self):
        from repro.graph.digraph import DiGraph

        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            Pwah8(g)

    def test_compresses_path_closures(self):
        # Path closures are contiguous suffixes: tiny PWAH streams.
        g = path_dag(700)
        idx = Pwah8(g)
        words = idx.index_size_ints() - g.n
        assert words < 3 * g.n
