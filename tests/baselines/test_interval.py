"""Tests for Nuutila INT."""

import pytest

from repro.baselines.interval import NuutilaInterval, postorder_numbering
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_dag, random_dag, sparse_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


class TestNumbering:
    def test_is_permutation(self):
        g = random_dag(50, 120, seed=1)
        nums = postorder_numbering(g)
        assert sorted(nums) == list(range(50))

    def test_descendants_numbered_lower(self):
        # Post-order property: along any edge, child finished first.
        g = random_dag(40, 90, seed=2)
        nums = postorder_numbering(g)
        for u, v in g.edges():
            assert nums[v] < nums[u]


class TestCorrectness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth(self, graph):
        assert_matches_truth(NuutilaInterval(graph), graph)

    def test_cycle_rejected(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            NuutilaInterval(g)


class TestCompression:
    def test_path_is_single_interval_per_vertex(self):
        g = path_dag(50)
        idx = NuutilaInterval(g)
        for v in range(g.n):
            assert len(idx.intervals_of(v)) == 1

    def test_tree_compresses_well(self):
        g = sparse_dag(300, 0.0, seed=3)
        idx = NuutilaInterval(g)
        avg = sum(len(idx.intervals_of(v)) for v in range(g.n)) / g.n
        assert avg < 3.0

    def test_storage_budget_trips(self):
        g = random_dag(200, 2000, seed=4)
        with pytest.raises(MemoryError):
            NuutilaInterval(g, max_storage_ints=50)

    def test_index_size_counts_endpoints_and_numbering(self):
        g = path_dag(10)
        idx = NuutilaInterval(g)
        # one interval (2 ints) per vertex + numbering
        assert idx.index_size_ints() == 2 * 10 + 10
