"""Tests for PathTree."""

import pytest

from repro.baselines.pathtree import PathTree, greedy_path_decomposition
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_dag, random_dag, sparse_dag

from ..conftest import assert_matches_truth, family_cases, FAMILY_IDS


class TestPathDecomposition:
    def test_paths_partition_vertices(self):
        g = random_dag(60, 150, seed=1)
        paths = greedy_path_decomposition(g)
        seen = sorted(v for p in paths for v in p)
        assert seen == list(range(60))

    def test_paths_follow_edges(self):
        g = random_dag(50, 120, seed=2)
        for p in greedy_path_decomposition(g):
            for a, b in zip(p, p[1:]):
                assert g.has_edge(a, b)

    def test_single_path_graph_one_path(self):
        paths = greedy_path_decomposition(path_dag(10))
        assert len(paths) == 1
        assert paths[0] == list(range(10))

    def test_edgeless_graph_singleton_paths(self):
        g = DiGraph(5)
        paths = greedy_path_decomposition(g.freeze())
        assert len(paths) == 5

    def test_cycle_rejected(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            greedy_path_decomposition(g)


class TestCorrectness:
    @pytest.mark.parametrize("graph", family_cases(), ids=FAMILY_IDS)
    def test_matches_truth(self, graph):
        assert_matches_truth(PathTree(graph), graph)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags(self, seed):
        g = random_dag(40, 95, seed=seed)
        assert_matches_truth(PathTree(g), g)


class TestStructure:
    def test_same_path_fast_path(self):
        g = path_dag(30)
        pt = PathTree(g)
        # Whole graph is one path: every query is the O(1) comparison.
        assert pt._n_paths == 1
        assert pt.query(0, 29) and not pt.query(29, 0)

    def test_stats_fields(self):
        g = sparse_dag(80, 0.1, seed=3)
        stats = PathTree(g).stats()
        assert stats["paths"] >= 1
        assert stats["avg_intervals"] >= 0

    def test_storage_budget_trips(self):
        g = random_dag(200, 2000, seed=4)
        with pytest.raises(MemoryError):
            PathTree(g, max_storage_ints=50)

    def test_tree_numbering_compresses(self):
        # On a forest, PathTree should store few intervals per vertex.
        g = sparse_dag(300, 0.0, seed=5)
        pt = PathTree(g)
        assert pt.stats()["avg_intervals"] < 3.0
