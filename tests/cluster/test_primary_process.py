"""PrimaryProcess lifecycle, the durable replica tier, and the drill.

The headline acceptance test runs :func:`primary_crash_drill` end to
end: SIGKILL the journaled primary with an update in flight, restart
it from the same data dir, and prove no acked update was lost, the
in-flight batch was all-or-nothing, resends dedupe, and the replicas
re-converge.
"""

import random
import time

import pytest

from repro.cluster import PrimaryProcess, serve_replicated
from repro.cluster.chaos import _bfs_answers, primary_crash_drill
from repro.durability import JournaledPrimary
from repro.graph.digraph import DiGraph
from repro.graph.generators import novel_acyclic_edges, sparse_dag
from repro.server import ReachClient


def _wait_for(predicate, timeout_s, message):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    pytest.fail(message)


class TestPrimaryProcess:
    def test_start_query_update_kill_restart_recovers(self, tmp_path):
        g = sparse_dag(80, seed=11)
        (edge, *_), _ = novel_acyclic_edges(g, 1, seed=11)
        p = PrimaryProcess(str(tmp_path / "data"), g, sync="always")
        p.start()
        try:
            assert p.is_alive()
            assert p.recovery_info["recovered"] is False
            with ReachClient(*p.address) as c:
                reply = c.update([edge], client="t", seq=1)
                assert reply["deduped"] is False
            p.kill()  # SIGKILL: no checkpoint, no goodbye
            _wait_for(lambda: not p.is_alive(), 10, "primary did not die")
            p.restart()
            assert p.restarts == 1
            info = p.recovery_info
            assert info["recovered"] is True
            with ReachClient(*p.address) as c:
                # the acked update survived the kill
                assert c.query(*edge) is True
                # and its dedupe identity did too
                assert c.update([edge], client="t", seq=1)["deduped"] is True
        finally:
            p.stop()

    def test_stop_is_idempotent(self, tmp_path):
        p = PrimaryProcess(str(tmp_path / "d"), sparse_dag(20, seed=1))
        p.start()
        p.stop()
        p.stop()
        assert not p.is_alive()


class TestDurableTier:
    def test_updates_flow_through_router_to_primary(self, tmp_path):
        g = sparse_dag(80, seed=3)
        (edge, *_), _ = novel_acyclic_edges(g, 1, seed=3)
        server = serve_replicated(
            data_dir=str(tmp_path / "tier"), graph=g, replicas=2,
            sync="off",
        )
        try:
            with ReachClient(*server.address) as c:
                assert c.query(*edge) is False
                first = c.update([edge], client="cli", seq=1)
                assert first["deduped"] is False
                # resend through the front end dedupes at the primary
                assert c.update([edge], client="cli", seq=1)["deduped"]
                # replicas catch up and serve the new edge
                _wait_for(
                    lambda: c.query(*edge) is True, 30,
                    "replicas never converged on the update",
                )
        finally:
            server.close()

    def test_durable_tier_validates_arguments(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            serve_replicated()
        with pytest.raises(ValueError, match="exactly one"):
            serve_replicated(
                artifact_path="x.rpro", data_dir=str(tmp_path / "d")
            )


class TestCrashDrill:
    def test_drill_passes_all_checks(self, tmp_path):
        report = primary_crash_drill(
            str(tmp_path / "drill"),
            n=120,
            replicas=1,
            batches=8,
            edges_per_batch=2,
            sync="interval",
            query_pairs=150,
            seed=13,
        )
        assert report["ok"], report
        assert all(report["checks"].values()), report["checks"]
        assert report["recovery_info"]["recovered"] is True


class TestBfsTruth:
    def test_bfs_answers_match_oracle_semantics(self):
        g = DiGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        rng = random.Random(0)
        pairs = [(rng.randrange(5), rng.randrange(5)) for _ in range(20)]
        answers = _bfs_answers(g, pairs)
        for (u, v), got in zip(pairs, answers):
            # reflexive reachability, then simple path facts
            expect = u == v or (u, v) in {(0, 1), (0, 2), (1, 2), (3, 4)}
            assert got is expect


# The journal-level crash drill is cheap enough to run here too: a
# JournaledPrimary killed between ack and checkpoint must recover the
# acked batch from the journal alone (no process machinery involved).
def test_inprocess_ack_then_recover(tmp_path):
    g = sparse_dag(60, seed=21)
    edges, _ = novel_acyclic_edges(g, 3, seed=21)
    d = str(tmp_path / "data")
    p = JournaledPrimary(d, g, sync="always", checkpoint_every=0)
    for i, e in enumerate(edges):
        p.apply_update([e], client="x", seq=i + 1)
    p.live.store.close()
    p._journal.close()
    p._closed = True
    p2 = JournaledPrimary(d)
    try:
        assert p2.recovery_info["records_replayed"] == len(edges)
    finally:
        p2.close()
