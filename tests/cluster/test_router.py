"""ReplicaRouter over real in-process servers: routing, retries,
hedging, shedding, and the static-tier epoch rule."""

import random

import pytest

from repro.cluster import ChaosProxy, ReplicaRouter
from repro.cluster.router import ReplicaLink, ReplicaUnavailable
from repro.facade import Reachability
from repro.graph.generators import random_dag
from repro.serialization import load_artifact
from repro.server import protocol as proto
from repro.server.protocol import OverloadedError
from repro.server.service import QueryService, ReachServer


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    g = random_dag(120, 320, seed=3)
    path = str(tmp_path_factory.mktemp("cluster") / "dl.rpro")
    Reachability(g, "DL").save(path)
    direct = load_artifact(path)
    rng = random.Random(4)
    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(400)]
    expected = [bool(a) for a in direct.query_batch(pairs)]
    return path, pairs, expected


def _static_server(path):
    return ReachServer(
        QueryService(path, workers=0).start(), owns_service=True
    ).start()


@pytest.fixture()
def tier(artifact):
    """Two static replica servers + a fast-knobbed router over them."""
    path, pairs, expected = artifact
    servers = [_static_server(path), _static_server(path)]
    router = ReplicaRouter(
        [s.address for s in servers],
        health_interval_s=0.05,
        probation_delay_s=0.2,
        eject_after=2,
        backoff_base_s=0.005,
        request_timeout_s=3.0,
        min_slice=8,
    ).start()
    yield router, servers, pairs, expected
    router.close()
    for server in servers:
        server.close()


class TestRouting:
    def test_routed_answers_match_direct(self, tier):
        router, _servers, pairs, expected = tier
        assert router.query_pairs(pairs) == expected
        assert router.query(*pairs[0]) == expected[0]
        assert router.query_pairs([]) == []

    def test_large_requests_fan_out_in_slices(self, tier):
        router, _servers, pairs, _expected = tier
        router.query_pairs(pairs)  # 400 pairs, min_slice=8, 2 replicas
        doc = router.stats()
        assert doc["requests"] >= 1
        assert doc["slices"] >= 2 * doc["requests"]

    def test_static_tier_is_routable_at_epoch_zero(self, tier):
        """Plain servers answer OP_EPOCH with 0; with no epochs anywhere
        in the cluster that must not make them unroutable."""
        router, _servers, _pairs, _expected = tier
        assert router.current_epoch == 0
        assert len(router.health.routable()) == 2

    def test_duplicate_replica_addresses_rejected(self):
        with pytest.raises(ValueError):
            ReplicaRouter([("127.0.0.1", 1), ("127.0.0.1", 1)])

    def test_query_before_start_raises(self, artifact):
        path, _pairs, _expected = artifact
        router = ReplicaRouter([("127.0.0.1", 1)])
        with pytest.raises(RuntimeError):
            router.query_pairs([(0, 1)])
        router.close()


class TestFailover:
    def test_dead_replica_is_retried_elsewhere(self, tier):
        router, servers, pairs, expected = tier
        servers[0].close()  # in-flight connections die with RSTs
        assert router.query_pairs(pairs) == expected
        doc = router.stats()
        assert doc["failed"] == 0

    def test_dead_replica_gets_ejected_by_heartbeats(self, tier):
        import time

        router, servers, _pairs, _expected = tier
        dead = f"{servers[0].address[0]}:{servers[0].address[1]}"
        servers[0].close()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if router.health.state_of(dead)["state"] == "ejected":
                break
            time.sleep(0.02)
        assert router.health.state_of(dead)["state"] == "ejected"
        assert len(router.health.routable()) == 1

    def test_all_replicas_down_is_an_explicit_overload(self, tier):
        router, servers, pairs, _expected = tier
        for server in servers:
            server.close()
        for _ in range(40):  # let the heartbeat eject both
            router.health.poll_once()
            if not router.health.routable():
                break
        with pytest.raises((OverloadedError, ReplicaUnavailable)):
            router.query_pairs(pairs)

    def test_shedding_at_max_inflight(self, artifact):
        path, pairs, _expected = artifact
        server = _static_server(path)
        router = ReplicaRouter([server.address], max_inflight=0).start()
        try:
            with pytest.raises(OverloadedError):
                router.query_pairs(pairs)
            assert router.stats()["shed"] == 1
        finally:
            router.close()
            server.close()

    def test_hedged_dispatch_beats_a_slow_replica(self, artifact):
        path, pairs, expected = artifact
        fast = _static_server(path)
        slow = _static_server(path)
        proxy = ChaosProxy(*slow.address, mode="delay", delay_s=0.4)
        router = ReplicaRouter(
            [fast.address, proxy.address],
            hedge_after_s=0.03,
            request_timeout_s=5.0,
            health_interval_s=0.05,
            min_slice=len(pairs) + 1,  # keep requests whole
        ).start()
        try:
            for _ in range(12):
                assert router.query_pairs(pairs[:40]) == expected[:40]
            doc = router.stats()
            # With two equally-loaded replicas the slow one is primary
            # about half the time; twelve rounds make a zero-hedge run
            # astronomically unlikely.
            assert doc["hedges"] >= 1
            assert doc["failed"] == 0
        finally:
            router.close()
            proxy.close()
            fast.close()
            slow.close()


class TestReplicaLink:
    def test_unreachable_link_fails_requests_not_constructor(self):
        link = ReplicaLink("127.0.0.1", 1, connect_timeout_s=0.2)
        with pytest.raises(ReplicaUnavailable):
            link.request(proto.OP_PING, timeout=1.0)
        link.close()

    def test_closed_link_fails_fast(self, artifact):
        path, _pairs, _expected = artifact
        server = _static_server(path)
        link = ReplicaLink(*server.address)
        assert link.probe_epoch() == 0
        link.close()
        with pytest.raises(ReplicaUnavailable):
            link.request(proto.OP_PING, timeout=1.0)
        server.close()
