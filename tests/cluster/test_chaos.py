"""ChaosProxy: every failure mode produces the *right* client failure.

The proxy sits between a ReachClient and a real server; the point of
each test is that misbehavior surfaces as a retryable transport error
(or a deadline), never as silently wrong answers.
"""

import random

import pytest

from repro.cluster import ChaosProxy
from repro.cluster.chaos import MODES
from repro.facade import Reachability
from repro.graph.generators import random_dag
from repro.serialization import load_artifact
from repro.server import ReachClient
from repro.server.service import QueryService, ReachServer


@pytest.fixture(scope="module")
def backend(tmp_path_factory):
    g = random_dag(80, 200, seed=9)
    path = str(tmp_path_factory.mktemp("chaos") / "dl.rpro")
    Reachability(g, "DL").save(path)
    direct = load_artifact(path)
    rng = random.Random(2)
    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(60)]
    expected = [bool(a) for a in direct.query_batch(pairs)]
    server = ReachServer(
        QueryService(path, workers=0).start(), owns_service=True
    ).start()
    yield server, pairs, expected
    server.close()


@pytest.fixture()
def proxy(backend):
    server, _pairs, _expected = backend
    with ChaosProxy(*server.address) as chaos:
        yield chaos


class TestModes:
    def test_pass_mode_is_a_faithful_wire(self, backend, proxy):
        _server, pairs, expected = backend
        with ReachClient(proxy.host, proxy.port) as client:
            assert client.query_batch(pairs) == expected
        doc = proxy.stats()
        assert doc["bytes_forwarded"] > 0
        assert doc["connections_total"] >= 1

    def test_delay_mode_still_answers_correctly(self, backend, proxy):
        _server, pairs, expected = backend
        proxy.set_mode("delay", delay_s=0.05)
        with ReachClient(proxy.host, proxy.port, timeout=10.0) as client:
            assert client.query_batch(pairs[:5]) == expected[:5]

    def test_reset_mode_kills_existing_and_new_connections(self, proxy):
        client = ReachClient(
            proxy.host, proxy.port, reconnect_attempts=1,
            reconnect_backoff_s=0.01,
        )
        assert client.ping()
        proxy.set_mode("reset")
        with pytest.raises((ConnectionError, RuntimeError)):
            client.ping()
        client.close()

    def test_reset_then_heal_lets_retries_win(self, backend, proxy):
        """The client's reconnect-with-backoff rides out a reset storm
        that ends before its attempts run out."""
        _server, pairs, expected = backend
        client = ReachClient(
            proxy.host, proxy.port, reconnect_attempts=2,
            reconnect_backoff_s=0.05,
        )
        assert client.query_batch(pairs) == expected
        proxy.set_mode("reset")  # RSTs the established connection
        proxy.set_mode("pass")  # ...but new connections are fine
        assert client.query_batch(pairs) == expected
        assert client.reconnects >= 1
        client.close()

    def test_half_write_surfaces_as_transport_error_not_garbage(self, proxy):
        proxy.set_mode("half_write", half_write_bytes=5)
        client = ReachClient(
            proxy.host, proxy.port, reconnect_attempts=1,
            reconnect_backoff_s=0.01,
        )
        with pytest.raises(ConnectionError):
            client.ping()
        client.close()

    def test_blackhole_mode_times_out_instead_of_hanging(self, proxy):
        proxy.set_mode("blackhole")
        client = ReachClient(
            proxy.host, proxy.port, timeout=0.3, reconnect_attempts=1,
            reconnect_backoff_s=0.01,
        )
        with pytest.raises(ConnectionError):
            client.ping()
        client.close()

    def test_unknown_mode_rejected(self, proxy):
        with pytest.raises(ValueError):
            proxy.set_mode("gremlins")
        with pytest.raises(ValueError):
            ChaosProxy("127.0.0.1", 1, mode="gremlins")
        assert proxy.mode in MODES


class TestLifecycle:
    def test_close_is_idempotent_and_drops_connections(self, backend):
        server, _pairs, _expected = backend
        chaos = ChaosProxy(*server.address)
        client = ReachClient(
            chaos.host, chaos.port, reconnect_attempts=0
        )
        assert client.ping()
        chaos.close()
        chaos.close()
        with pytest.raises((ConnectionError, RuntimeError, OSError)):
            client.ping()
        client.close()

    def test_proxy_to_nowhere_rejects_connections(self):
        with ChaosProxy("127.0.0.1", 1) as chaos:
            client = ReachClient(
                chaos.host, chaos.port, reconnect_attempts=1,
                reconnect_backoff_s=0.01, timeout=2.0,
            )
            with pytest.raises((ConnectionError, RuntimeError)):
                client.ping()
            client.close()
