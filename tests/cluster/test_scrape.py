"""Cluster scrape: merged replica histograms and failure visibility.

Replicas run with ``Telemetry(sample_every=1, latency_every=1)`` so
every request lands in the histograms — the production 1-in-K rates
record nothing deterministic on a short test workload.
"""

import random
import time

import pytest

from repro.cluster import ReplicaRouter
from repro.facade import Reachability
from repro.graph.generators import random_dag
from repro.serialization import load_artifact
from repro.server.service import QueryService, ReachServer
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    g = random_dag(120, 320, seed=3)
    path = str(tmp_path_factory.mktemp("scrape") / "dl.rpro")
    Reachability(g, "DL").save(path)
    direct = load_artifact(path)
    rng = random.Random(4)
    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(400)]
    expected = [bool(a) for a in direct.query_batch(pairs)]
    return path, pairs, expected


def _observed_server(path):
    service = QueryService(
        path,
        workers=0,
        telemetry=Telemetry(sample_every=1, latency_every=1),
    ).start()
    return ReachServer(service, owns_service=True).start()


@pytest.fixture()
def tier(artifact):
    path, pairs, expected = artifact
    servers = [_observed_server(path), _observed_server(path)]
    router = ReplicaRouter(
        [s.address for s in servers],
        health_interval_s=0.05,
        probation_delay_s=0.2,
        eject_after=2,
        backoff_base_s=0.005,
        request_timeout_s=3.0,
        min_slice=8,
    ).start()
    yield router, servers, pairs, expected
    router.close()
    for server in servers:
        server.close()


class TestScrapeMerge:
    def test_cluster_histogram_is_sum_of_replicas(self, tier):
        router, _servers, pairs, expected = tier
        assert router.query_pairs(pairs) == expected
        doc = router.scrape()
        assert doc["cluster"]["polled"] == 2
        assert doc["cluster"]["failed"] == 0
        assert len(doc["replicas"]) == 2
        per_replica = [
            rep["telemetry"]["histograms"]["repro_request_seconds"]
            for rep in doc["replicas"].values()
        ]
        # min_slice=8 over 400 pairs: both replicas served traffic
        assert all(h["count"] >= 1 for h in per_replica)
        merged = doc["cluster"]["histograms"]["repro_request_seconds"]
        assert merged["count"] == sum(h["count"] for h in per_replica)
        assert merged["sum"] == sum(h["sum"] for h in per_replica)

    def test_replica_stats_docs_are_v2(self, tier):
        router, _servers, _pairs, _expected = tier
        doc = router.scrape()
        for rep in doc["replicas"].values():
            assert rep["stats_version"] == 2
        assert "telemetry" in doc["router"]

    def test_counters_sum_across_replicas(self, tier):
        router, _servers, pairs, expected = tier
        assert router.query_pairs(pairs) == expected
        doc = router.scrape()
        counters = doc["cluster"]["counters"]
        per = [
            rep["telemetry"]["counters"]
            for rep in doc["replicas"].values()
        ]
        for name, total in counters.items():
            assert total == sum(c.get(name, 0) for c in per)


class TestScrapeUnderFailure:
    def test_dead_replica_degrades_scrape_not_fails_it(self, tier):
        router, servers, pairs, expected = tier
        assert router.query_pairs(pairs) == expected
        dead = f"{servers[0].address[0]}:{servers[0].address[1]}"
        servers[0].close()
        doc = router.scrape()
        assert doc["cluster"]["polled"] == 2
        assert doc["cluster"]["failed"] == 1
        assert "error" in doc["replicas"][dead]
        # the survivor's histograms still make it into the cluster view
        assert doc["cluster"]["histograms"]["repro_request_seconds"]["count"] >= 1

    def test_replica_kill_is_visible_in_router_metrics(self, tier):
        router, servers, pairs, expected = tier
        servers[0].close()
        # retried slices still answer correctly off the survivor
        assert router.query_pairs(pairs) == expected
        counters = router.telemetry.registry.snapshot()["counters"]
        assert counters["repro_router_retries_total"] >= 1
        # the heartbeat then ejects the dead member, and that ejection
        # is a first-class counter in the scraped router section
        dead = f"{servers[0].address[0]}:{servers[0].address[1]}"
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if router.health.state_of(dead)["state"] == "ejected":
                break
            time.sleep(0.02)
        doc = router.scrape()
        tel = doc["router"]["telemetry"]
        assert tel["counters"]["repro_router_ejections_total"] >= 1
        attempts = tel["histograms"]["repro_router_attempts_per_slice"]
        assert attempts["count"] >= 1
        assert attempts["unit"] == "attempts"
