"""Epoch shipping, replica processes, and the tier's acceptance drill.

The headline chaos test lives here
(:class:`TestKillAReplicaUnderLoad`): SIGKILL a replica mid-load and
zero client requests fail; client-observed epochs stay monotone
through staggered flips; the replica restarts blank, bootstraps from
the newest shipped epoch, and is re-admitted.
"""

import random
import threading
import time

import pytest

from repro.cluster import (
    EpochShipper,
    ReplicaProcess,
    install_ship_handler,
    serve_replicated,
)
from repro.facade import Reachability
from repro.graph.generators import random_dag
from repro.live import VersionedArtifactStore
from repro.serialization import load_artifact
from repro.server import ReachClient, run_load
from repro.server.service import QueryService, ReachServer


def _wait_for(predicate, timeout_s, message):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    pytest.fail(message)


@pytest.fixture(scope="module")
def two_artifacts(tmp_path_factory):
    """v1/v2 artifacts over evolving graphs + workloads and answers."""
    g1 = random_dag(100, 260, seed=6)
    g2 = random_dag(100, 300, seed=6)  # superset-ish: same n, more edges
    tmp = tmp_path_factory.mktemp("ship")
    p1, p2 = str(tmp / "v1.rpro"), str(tmp / "v2.rpro")
    Reachability(g1, "DL").save(p1)
    Reachability(g2, "DL").save(p2)
    rng = random.Random(8)
    pairs = [(rng.randrange(100), rng.randrange(100)) for _ in range(300)]
    exp1 = [bool(a) for a in load_artifact(p1).query_batch(pairs)]
    exp2 = [bool(a) for a in load_artifact(p2).query_batch(pairs)]
    return p1, p2, pairs, exp1, exp2


class TestShipHandler:
    @pytest.fixture()
    def replica(self):
        """An in-process store-backed server with the ship handler."""
        store = VersionedArtifactStore()
        service = QueryService(
            store=store, owns_store=True, workers=0, allow_empty_store=True
        ).start()
        server = ReachServer(service, owns_service=True)
        install_ship_handler(server, store)
        server.start()
        yield server, store
        server.close()

    def test_ship_fills_a_blank_replica(self, two_artifacts, replica):
        p1, _p2, pairs, exp1, _exp2 = two_artifacts
        server, store = replica
        with open(p1, "rb") as fh:
            data = fh.read()
        with ReachClient(*server.address) as client:
            reply = client.ship(7, data)
            assert reply["applied"] is True
            assert reply["epoch"] == 7
            assert client.epoch() == 7
            assert client.query_batch(pairs) == exp1
        assert store.current_epoch == 7

    def test_stale_ship_is_an_idempotent_no_op(self, two_artifacts, replica):
        p1, p2, pairs, _exp1, exp2 = two_artifacts
        server, store = replica
        data1 = open(p1, "rb").read()
        data2 = open(p2, "rb").read()
        with ReachClient(*server.address) as client:
            assert client.ship(5, data2)["applied"] is True
            for stale_epoch in (5, 3):  # equal and older both refuse
                reply = client.ship(stale_epoch, data1)
                assert reply["applied"] is False
                assert "stale" in reply["reason"]
            assert client.epoch() == 5
            assert client.query_batch(pairs) == exp2  # v2 still serving
        assert store.current_epoch == 5

    def test_corrupt_ship_payload_reports_not_kills(self, replica):
        server, _store = replica
        with ReachClient(*server.address) as client:
            reply = client.ship(1, b"this is not an artifact")
            assert reply["applied"] is False
            assert client.ping()  # connection survived


class TestEpochShipper:
    def test_shipper_syncs_blank_and_lagging_replicas(self, two_artifacts):
        p1, p2, pairs, _exp1, exp2 = two_artifacts
        store = VersionedArtifactStore()
        proc = ReplicaProcess()  # blank: no seed artifact
        shipper = None
        try:
            port = proc.start()
            store.publish_snapshot(p1)
            shipper = EpochShipper(
                store, [("127.0.0.1", port)], sync_interval_s=0.1
            ).start()
            with ReachClient("127.0.0.1", port) as client:
                _wait_for(
                    lambda: client.epoch() == 1, 15.0,
                    "blank replica was never bootstrapped",
                )
                # A publish hook wakes the shipper: the next epoch
                # arrives without waiting out sync_interval_s rounds.
                store.publish_snapshot(p2)
                _wait_for(
                    lambda: client.epoch() == 2, 15.0,
                    "follow-up epoch was never shipped",
                )
                assert client.query_batch(pairs) == exp2
            doc = shipper.stats()
            assert doc["ships_applied"] >= 2
        finally:
            if shipper is not None:
                shipper.close()
            proc.stop()
            store.close()


class TestReplicaProcess:
    def test_lifecycle_and_blank_restart(self, two_artifacts):
        p1, _p2, pairs, exp1, _exp2 = two_artifacts
        proc = ReplicaProcess(seed_path=p1)
        try:
            port = proc.start()
            assert proc.is_alive()
            with ReachClient("127.0.0.1", port) as client:
                assert client.epoch() == 1
                assert client.query_batch(pairs) == exp1
            proc.kill()
            assert not proc.is_alive()
            assert proc.restart() == port  # same port, blank by default
            assert proc.restarts == 1
            with ReachClient("127.0.0.1", port) as client:
                assert client.epoch() == 0  # blank: waiting for a ship
            proc.kill()
            assert proc.restart(seed=True) == port
            with ReachClient("127.0.0.1", port) as client:
                assert client.epoch() == 1  # reseeded from the artifact
        finally:
            proc.stop()

    def test_stop_is_idempotent(self):
        proc = ReplicaProcess()
        proc.start()
        proc.stop()
        proc.stop()
        assert not proc.is_alive()


class TestKillAReplicaUnderLoad:
    """The acceptance criteria, verbatim."""

    def test_zero_failures_monotone_epochs_bootstrap_readmission(
        self, two_artifacts
    ):
        p1, p2, pairs, _exp1, exp2 = two_artifacts
        server = serve_replicated(
            p1,
            replicas=2,
            sync_interval_s=0.1,
            health_interval_s=0.05,
            probation_delay_s=0.2,
            eject_after=2,
            backoff_base_s=0.005,
        )
        router = server.router
        try:
            host, port = server.address
            victim = server.replicas[0]
            victim_name = f"{victim.host}:{victim.port}"

            # Client-observed epochs, polled throughout the whole run.
            epochs = []
            stop = threading.Event()

            def poll_epochs():
                with ReachClient(host, port) as poller:
                    while not stop.is_set():
                        epochs.append(poller.epoch())
                        time.sleep(0.01)

            watcher = threading.Thread(target=poll_epochs)
            watcher.start()

            # Mixed load: reads stream while an epoch flip (the "update"
            # on a frozen-artifact tier) ships replica by replica...
            flipper = threading.Timer(
                0.05, lambda: server.store.publish_snapshot(p2)
            )
            flipper.start()
            # ...and the victim is SIGKILLed with requests in flight.
            killer = threading.Timer(0.1, victim.kill)
            killer.start()
            report = run_load(
                host, port, pairs * 20, connections=4, pipeline=16
            )
            flipper.join()
            killer.join()

            # 1. Zero failed client requests under mixed load.
            assert report.errors == 0, f"dropped: {report.first_error}"

            # The dead replica gets ejected...
            _wait_for(
                lambda: router.health.state_of(victim_name)["state"]
                == "ejected",
                10.0,
                "dead replica never ejected",
            )
            # ...while the tier serves on, now at epoch 2.
            _wait_for(
                lambda: router.current_epoch >= 2, 10.0,
                "shipped epoch never reached the router",
            )
            with ReachClient(host, port) as client:
                assert client.query_batch(pairs) == exp2

            # 2. Blank restart bootstraps from the latest epoch and is
            #    re-admitted at full routability.
            victim.restart()
            _wait_for(
                lambda: len(router.health.routable()) == 2, 20.0,
                "restarted replica never re-admitted",
            )
            assert (
                router.health.state_of(victim_name)["epoch"]
                == server.store.current_epoch
            )
            after = run_load(host, port, pairs, connections=2, pipeline=8)
            assert after.errors == 0

            stop.set()
            watcher.join()

            # 3. Client-observed epochs are monotone through the
            #    staggered per-replica flips.
            assert epochs, "the epoch watcher never sampled"
            assert all(a <= b for a, b in zip(epochs, epochs[1:])), (
                f"epochs went backwards: {epochs}"
            )
            assert epochs[-1] == 2
        finally:
            server.close()
