"""HealthMonitor: the eject/probation/re-admit state machine.

Everything here is deterministic: a fake clock, hand-rolled probe
callables, and :meth:`poll_once` instead of the heartbeat thread.
"""

import pytest

from repro.cluster.health import EJECTED, HEALTHY, PROBATION, HealthMonitor


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class FlakyProbe:
    """A probe whose outcome the test scripts, call by call."""

    def __init__(self, epoch=1):
        self.epoch = epoch
        self.fail = False
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.fail:
            raise ConnectionError("probe refused")
        return self.epoch


@pytest.fixture()
def tier():
    clock = FakeClock()
    probes = {"a": FlakyProbe(epoch=3), "b": FlakyProbe(epoch=2)}
    monitor = HealthMonitor(
        probes,
        eject_after=3,
        probation_delay_s=1.0,
        clock=clock,
    )
    return monitor, probes, clock


class TestStateMachine:
    def test_healthy_replicas_are_routable_freshest_first(self, tier):
        monitor, _probes, _clock = tier
        monitor.poll_once()
        assert monitor.routable() == ["a", "b"]  # epoch 3 before epoch 2
        assert monitor.cluster_epoch == 3

    def test_ejection_needs_consecutive_failures(self, tier):
        monitor, probes, _clock = tier
        monitor.poll_once()
        probes["a"].fail = True
        monitor.poll_once()
        monitor.poll_once()
        assert monitor.state_of("a")["state"] == HEALTHY  # 2 strikes < 3
        probes["a"].fail = False
        monitor.poll_once()  # success resets the streak
        probes["a"].fail = True
        monitor.poll_once()
        monitor.poll_once()
        assert monitor.state_of("a")["state"] == HEALTHY
        monitor.poll_once()  # third consecutive failure
        assert monitor.state_of("a")["state"] == EJECTED
        assert monitor.routable() == ["b"]

    def test_probation_after_cooloff_then_readmission(self, tier):
        monitor, probes, clock = tier
        probes["a"].fail = True
        for _ in range(3):
            monitor.poll_once()
        assert monitor.state_of("a")["state"] == EJECTED
        monitor.poll_once()  # still cooling off: no probe reaches it
        calls_during_cooloff = probes["a"].calls
        monitor.poll_once()
        assert probes["a"].calls == calls_during_cooloff
        clock.advance(1.5)  # past probation_delay_s
        probes["a"].fail = False
        monitor.poll_once()  # half-open probe succeeds
        assert monitor.state_of("a")["state"] == HEALTHY
        assert "a" in monitor.routable()
        assert monitor.state_of("a")["readmissions"] == 1

    def test_failed_probation_probe_reejects_and_resets_timer(self, tier):
        monitor, probes, clock = tier
        probes["a"].fail = True
        for _ in range(3):
            monitor.poll_once()
        clock.advance(1.5)
        monitor.poll_once()  # probation probe, still failing
        assert monitor.state_of("a")["state"] == EJECTED
        clock.advance(0.5)  # timer restarted: not cool yet
        calls = probes["a"].calls
        monitor.poll_once()
        assert probes["a"].calls == calls

    def test_data_path_failures_share_the_counter(self, tier):
        monitor, _probes, _clock = tier
        monitor.poll_once()
        for _ in range(3):
            monitor.record_failure("a", ConnectionResetError("mid-batch"))
        assert monitor.state_of("a")["state"] == EJECTED

    def test_data_path_success_readmits_an_ejected_replica(self, tier):
        monitor, _probes, _clock = tier
        monitor.poll_once()
        for _ in range(3):
            monitor.record_failure("a", OSError("x"))
        monitor.record_success("a")  # alive is alive
        assert monitor.state_of("a")["state"] == HEALTHY


class TestEpochs:
    def test_blank_replica_is_healthy_but_not_routable(self):
        """Once the cluster has epochs, a replica reporting 0 is blank
        (restarted empty) and must not receive traffic."""
        monitor = HealthMonitor({"blank": lambda: 0, "full": lambda: 1})
        monitor.poll_once()
        assert monitor.state_of("blank")["state"] == HEALTHY
        assert monitor.routable() == ["full"]

    def test_static_tier_without_epochs_is_fully_routable(self):
        """A tier of plain static servers (every probe answers 0) has
        no epoch concept; healthy means routable."""
        monitor = HealthMonitor({"a": lambda: 0, "b": lambda: 0})
        monitor.poll_once()
        assert sorted(monitor.routable()) == ["a", "b"]

    def test_stale_replica_flagged_and_deprioritized(self, tier):
        monitor, probes, _clock = tier
        monitor.poll_once()
        probes["b"].epoch = 5
        monitor.poll_once()
        assert monitor.routable() == ["b", "a"]  # b is freshest now
        assert monitor.state_of("a")["stale"] is True
        assert monitor.state_of("b")["stale"] is False

    def test_probe_epoch_regression_revokes_routability(self, tier):
        """A replica that restarts blank must lose its old epoch: the
        probe's report is authoritative, even downward."""
        monitor, probes, _clock = tier
        monitor.poll_once()
        assert "a" in monitor.routable()
        probes["a"].epoch = 0  # crashed, restarted blank
        monitor.poll_once()
        assert monitor.state_of("a")["epoch"] == 0
        assert "a" not in monitor.routable()
        assert monitor.cluster_epoch == 3  # cluster max never decreases

    def test_data_path_success_does_not_touch_the_epoch(self, tier):
        monitor, _probes, _clock = tier
        monitor.poll_once()
        monitor.record_success("a")  # liveness only, no epoch claim
        assert monitor.state_of("a")["epoch"] == 3

    def test_unknown_replica_records_are_ignored(self, tier):
        monitor, _probes, _clock = tier
        monitor.record_success("nobody", 9)
        monitor.record_failure("nobody", OSError("x"))
        assert monitor.cluster_epoch == 0


class TestObservability:
    def test_on_change_sees_every_transition(self):
        clock = FakeClock()
        probe = FlakyProbe()
        events = []
        monitor = HealthMonitor(
            {"a": probe},
            eject_after=1,
            probation_delay_s=1.0,
            on_change=lambda name, old, new: events.append((name, old, new)),
            clock=clock,
        )
        monitor.poll_once()
        probe.fail = True
        monitor.poll_once()
        clock.advance(2.0)
        probe.fail = False
        monitor.poll_once()
        assert events == [
            ("a", HEALTHY, EJECTED),
            ("a", EJECTED, PROBATION),
            ("a", PROBATION, HEALTHY),
        ]

    def test_stats_document_shape(self, tier):
        monitor, _probes, _clock = tier
        monitor.poll_once()
        doc = monitor.stats()
        assert doc["cluster_epoch"] == 3
        by_name = {row["name"]: row for row in doc["replicas"]}
        assert by_name["a"]["probes"] == 1
        assert by_name["b"]["epoch"] == 2

    def test_eject_after_must_be_positive(self):
        with pytest.raises(ValueError):
            HealthMonitor({}, eject_after=0)

    def test_thread_lifecycle(self):
        monitor = HealthMonitor({"a": lambda: 1}, interval_s=0.01)
        monitor.start()
        import time

        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if monitor.state_of("a")["probes"] >= 2:
                break
            time.sleep(0.01)
        monitor.close()
        assert monitor.state_of("a")["probes"] >= 2
        monitor.close()  # idempotent
