"""Tests for the sharded LRU result cache."""

import threading

import pytest

from repro.server.cache import ShardedLRUCache


class TestBasics:
    def test_get_put_round_trip(self):
        cache = ShardedLRUCache(16)
        cache.put((1, 2), True)
        cache.put((3, 4), False)
        assert cache.get((1, 2)) is True
        assert cache.get((3, 4)) is False
        assert cache.get((9, 9)) is None

    def test_len_and_clear(self):
        cache = ShardedLRUCache(16, shards=2)
        for i in range(5):
            cache.put((i, i), True)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0  # stats survive, still zero

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            ShardedLRUCache(-1)
        with pytest.raises(ValueError):
            ShardedLRUCache(8, shards=0)


class TestLRU:
    def test_eviction_drops_least_recent(self):
        cache = ShardedLRUCache(3, shards=1)
        cache.put((0, 0), True)
        cache.put((1, 1), True)
        cache.put((2, 2), True)
        cache.get((0, 0))  # refresh 0 — (1, 1) is now LRU
        cache.put((3, 3), True)
        assert cache.get((1, 1)) is None
        assert cache.get((0, 0)) is True
        assert cache.stats()["evictions"] == 1

    def test_refresh_on_put_of_existing_key(self):
        cache = ShardedLRUCache(2, shards=1)
        cache.put((0, 0), True)
        cache.put((1, 1), True)
        cache.put((0, 0), False)  # refresh + overwrite, no eviction
        cache.put((2, 2), True)
        assert cache.get((1, 1)) is None  # (1, 1) was LRU
        assert cache.get((0, 0)) is False


class TestStats:
    def test_hit_miss_negative_counters(self):
        cache = ShardedLRUCache(16)
        cache.put((1, 2), True)
        cache.put((3, 4), False)
        cache.get((1, 2))        # positive hit
        cache.get((3, 4))        # negative hit
        cache.get((3, 4))        # negative hit
        cache.get((5, 6))        # miss
        stats = cache.stats()
        assert stats["hits"] == 3
        assert stats["misses"] == 1
        assert stats["negative_hits"] == 2
        assert stats["positive_hits"] == 1
        assert stats["hit_rate"] == pytest.approx(0.75)

    def test_capacity_splits_across_shards(self):
        cache = ShardedLRUCache(64, shards=8)
        assert cache.stats()["shards"] == 8
        assert cache.capacity == 64


class TestBatchApi:
    def test_get_many_partitions_hits_and_misses(self):
        cache = ShardedLRUCache(16)
        cache.put((0, 1), True)
        answers, missing = cache.get_many([(0, 1), (2, 3), (4, 5)])
        assert answers == [True, None, None]
        assert missing == [1, 2]

    def test_put_many_then_full_hit(self):
        cache = ShardedLRUCache(16)
        pairs = [(i, i + 1) for i in range(6)]
        cache.put_many(pairs, [i % 2 == 0 for i in range(6)])
        answers, missing = cache.get_many(pairs)
        assert missing == []
        assert answers == [True, False, True, False, True, False]


class TestDisabled:
    def test_zero_capacity_is_pass_through(self):
        cache = ShardedLRUCache(0)
        assert not cache.enabled
        cache.put((1, 2), True)
        assert cache.get((1, 2)) is None
        answers, missing = cache.get_many([(1, 2), (3, 4)])
        assert answers == [None, None]
        assert missing == [0, 1]
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0


class TestConcurrency:
    def test_parallel_readers_and_writers_stay_consistent(self):
        cache = ShardedLRUCache(256, shards=4)
        errors = []

        def hammer(seed):
            try:
                for i in range(500):
                    key = ((seed * 31 + i) % 64, i % 64)
                    cache.put(key, (i % 2) == 0)
                    got = cache.get(key)
                    assert got is None or isinstance(got, bool)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= cache.capacity
