"""Tests for the binary wire protocol codec and frame reader."""

import socket
import threading

import pytest

from repro.server import protocol as proto


class TestFrames:
    def test_pack_unpack_header_round_trip(self):
        frame = proto.pack_frame(proto.OP_QUERY, 42, b"abc")
        length, op, request_id = proto.unpack_header(frame)
        assert (length, op, request_id) == (3, proto.OP_QUERY, 42)
        assert frame[proto.HEADER.size:] == b"abc"

    def test_request_id_is_u64(self):
        big = (1 << 64) - 1
        frame = proto.pack_frame(proto.OP_PING, big)
        assert proto.unpack_header(frame)[2] == big

    def test_unknown_opcode_rejected(self):
        with pytest.raises(proto.ProtocolError):
            proto.pack_frame(99, 0)
        bad = proto.HEADER.pack(0, 99, 0)
        with pytest.raises(proto.ProtocolError):
            proto.unpack_header(bad)

    def test_oversized_length_rejected(self):
        bad = proto.HEADER.pack(proto.MAX_PAYLOAD + 1, proto.OP_QUERY, 0)
        with pytest.raises(proto.ProtocolError):
            proto.unpack_header(bad)


class TestPairCodec:
    def test_round_trip(self):
        pairs = [(0, 1), (5, 5), (2**32 - 1, 7)]
        assert proto.decode_pairs(proto.encode_pairs(pairs)) == pairs

    def test_empty(self):
        assert proto.decode_pairs(proto.encode_pairs([])) == []

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(proto.ProtocolError):
            proto.encode_pairs([(2**32, 0)])
        with pytest.raises(proto.ProtocolError):
            proto.encode_pairs([(-1, 0)])

    def test_truncated_payload_rejected(self):
        payload = proto.encode_pairs([(1, 2), (3, 4)])
        with pytest.raises(proto.ProtocolError):
            proto.decode_pairs(payload[:-1])
        with pytest.raises(proto.ProtocolError):
            proto.decode_pairs(b"\x01")


class TestAnswerCodec:
    @pytest.mark.parametrize("count", [0, 1, 7, 8, 9, 64, 100])
    def test_round_trip_all_lengths(self, count):
        answers = [(i * 7) % 3 == 0 for i in range(count)]
        assert proto.decode_answers(proto.encode_answers(answers)) == answers

    def test_bit_packing_is_lsb_first(self):
        payload = proto.encode_answers([True, False, False, True])
        assert payload[4] == 0b1001

    def test_count_mismatch_rejected(self):
        payload = proto.encode_answers([True] * 9)
        with pytest.raises(proto.ProtocolError):
            proto.decode_answers(payload[:-1])


class _SocketPair:
    """A connected socket pair; the test writes raw bytes to one end."""

    def __enter__(self):
        self.a, self.b = socket.socketpair()
        return self

    def __exit__(self, *exc):
        self.a.close()
        self.b.close()


class TestFrameReader:
    def test_single_frame(self):
        with _SocketPair() as sp:
            sp.a.sendall(proto.pack_frame(proto.OP_PING, 3))
            sp.a.shutdown(socket.SHUT_WR)
            reader = proto.FrameReader(sp.b)
            assert reader.read_frame() == (proto.OP_PING, 3, b"")
            assert reader.read_frame() is None  # clean EOF

    def test_pipelined_frames_in_one_send(self):
        frames = b"".join(
            proto.pack_frame(proto.OP_QUERY, i, proto.encode_pairs([(i, i + 1)]))
            for i in range(5)
        )
        with _SocketPair() as sp:
            sp.a.sendall(frames)
            sp.a.shutdown(socket.SHUT_WR)
            reader = proto.FrameReader(sp.b)
            for i in range(5):
                op, rid, payload = reader.read_frame()
                assert (op, rid) == (proto.OP_QUERY, i)
                assert proto.decode_pairs(payload) == [(i, i + 1)]

    def test_frame_split_across_sends(self):
        frame = proto.pack_frame(proto.OP_QUERY, 9, proto.encode_pairs([(1, 2)]))
        with _SocketPair() as sp:
            done = threading.Event()

            def dribble():
                for i in range(len(frame)):
                    sp.a.sendall(frame[i:i + 1])
                done.set()

            threading.Thread(target=dribble, daemon=True).start()
            reader = proto.FrameReader(sp.b, recv_size=1)
            assert reader.read_frame() == (
                proto.OP_QUERY, 9, proto.encode_pairs([(1, 2)])
            )
            assert done.wait(5)

    def test_eof_mid_frame_raises(self):
        frame = proto.pack_frame(proto.OP_QUERY, 1, proto.encode_pairs([(1, 2)]))
        with _SocketPair() as sp:
            sp.a.sendall(frame[:proto.HEADER.size + 2])
            sp.a.shutdown(socket.SHUT_WR)
            reader = proto.FrameReader(sp.b)
            with pytest.raises(proto.ProtocolError):
                reader.read_frame()

    def test_eof_mid_header_raises(self):
        with _SocketPair() as sp:
            sp.a.sendall(b"\x01\x02")
            sp.a.shutdown(socket.SHUT_WR)
            reader = proto.FrameReader(sp.b)
            with pytest.raises(proto.ProtocolError):
                reader.read_frame()

    def test_garbage_header_raises(self):
        with _SocketPair() as sp:
            sp.a.sendall(b"\xff" * 32)
            sp.a.shutdown(socket.SHUT_WR)
            reader = proto.FrameReader(sp.b)
            with pytest.raises(proto.ProtocolError):
                reader.read_frame()
