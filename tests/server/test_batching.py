"""Tests for the micro-batching front end."""

import threading
import time

import pytest

from repro.server.batching import Batch, MicroBatcher, QueryRequest


class _RecordingDispatch:
    """A dispatch target that logs every batch and answers True."""

    def __init__(self, delay_s: float = 0.0, fail_with=None):
        self.batches = []
        self.delay_s = delay_s
        self.fail_with = fail_with
        self.lock = threading.Lock()

    def __call__(self, batch: Batch) -> None:
        with self.lock:
            self.batches.append(batch)
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.fail_with is not None:
            batch.fail(self.fail_with)
        else:
            batch.resolve([True] * len(batch.pairs))


class TestBatchContainer:
    def test_concatenation_and_scatter(self):
        reqs = [
            QueryRequest([(0, 1), (2, 3)], None),
            QueryRequest([(4, 5)], None),
        ]
        batch = Batch(reqs)
        assert batch.pairs == [(0, 1), (2, 3), (4, 5)]
        batch.resolve([True, False, True])
        assert reqs[0].answers == [True, False]
        assert reqs[1].answers == [True]

    def test_singleton_flag(self):
        assert Batch([QueryRequest([(1, 2)], None)]).singleton
        assert not Batch([QueryRequest([(1, 2), (3, 4)], None)]).singleton
        assert not Batch(
            [QueryRequest([(1, 2)], None), QueryRequest([(3, 4)], None)]
        ).singleton

    def test_answer_count_mismatch_fails_requests(self):
        req = QueryRequest([(0, 1)], None)
        Batch([req]).resolve([True, False])
        assert isinstance(req.error, RuntimeError)


class TestCoalescing:
    def test_concurrent_submits_merge_into_one_batch(self):
        dispatch = _RecordingDispatch()
        batcher = MicroBatcher(dispatch, window_s=0.05).start()
        try:
            results = {}
            threads = [
                threading.Thread(
                    target=lambda i=i: results.__setitem__(
                        i, batcher.submit([(i, i + 1)])
                    )
                )
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(results[i] == [True] for i in range(8))
            # All 8 requests arrived within the 50 ms window: they must
            # have coalesced into very few batches (1 in practice; the
            # first may dispatch alone if the window opened early).
            assert len(dispatch.batches) <= 2
            assert sum(len(b.pairs) for b in dispatch.batches) == 8
            stats = batcher.stats()
            assert stats["coalesced_batches"] >= 1
            assert stats["mean_batch_pairs"] >= 4
        finally:
            batcher.close()

    def test_lone_request_is_singleton_batch(self):
        dispatch = _RecordingDispatch()
        batcher = MicroBatcher(dispatch, window_s=0.005).start()
        try:
            assert batcher.submit([(3, 4)]) == [True]
            assert len(dispatch.batches) == 1
            assert dispatch.batches[0].singleton
        finally:
            batcher.close()

    def test_max_batch_splits_oversized_windows(self):
        dispatch = _RecordingDispatch()
        batcher = MicroBatcher(dispatch, window_s=0.05, max_batch=3).start()
        try:
            threads = [
                threading.Thread(
                    target=lambda i=i: batcher.submit([(i, 0), (i, 1)])
                )
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sum(len(b.pairs) for b in dispatch.batches) == 8
            # 2 pairs per request, cap 3 -> no batch may merge two
            # requests (4 > 3), so every batch holds exactly one.
            assert all(len(b.pairs) <= 3 for b in dispatch.batches)
        finally:
            batcher.close()

    def test_empty_request_completes_without_dispatch(self):
        dispatch = _RecordingDispatch()
        batcher = MicroBatcher(dispatch, window_s=0.005).start()
        try:
            assert batcher.submit([]) == []
            assert dispatch.batches == []
        finally:
            batcher.close()


class TestPassThrough:
    def test_zero_window_dispatches_synchronously(self):
        dispatch = _RecordingDispatch()
        batcher = MicroBatcher(dispatch, window_s=0.0).start()
        try:
            assert batcher.submit([(1, 2)]) == [True]
            assert batcher.submit([(3, 4), (5, 6)]) == [True, True]
            # No coalescing: one batch per request, same thread.
            assert len(dispatch.batches) == 2
        finally:
            batcher.close()

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, window_s=-0.001)


class TestErrors:
    def test_dispatch_failure_propagates_to_submitter(self):
        boom = ValueError("oracle exploded")
        batcher = MicroBatcher(
            _RecordingDispatch(fail_with=boom), window_s=0.005
        ).start()
        try:
            with pytest.raises(ValueError, match="oracle exploded"):
                batcher.submit([(1, 2)])
        finally:
            batcher.close()

    def test_submit_after_close_fails_cleanly(self):
        batcher = MicroBatcher(_RecordingDispatch(), window_s=0.005).start()
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit([(1, 2)])

    def test_close_fails_pending_requests(self):
        slow = _RecordingDispatch(delay_s=0.2)
        batcher = MicroBatcher(slow, window_s=10.0).start()  # huge window
        errors = []

        def submitter():
            try:
                batcher.submit([(1, 2)])
            except RuntimeError as exc:
                errors.append(exc)

        t = threading.Thread(target=submitter)
        t.start()
        time.sleep(0.05)  # request is pending inside the open window
        batcher.close()
        t.join(5)
        assert len(errors) == 1


class TestAdaptiveWindow:
    """The window shrinks toward 0 under low arrival rate (satellite)."""

    def test_non_adaptive_effective_window_is_the_ceiling(self):
        b = MicroBatcher(_RecordingDispatch(), window_s=0.001)
        assert b.effective_window_s() == 0.001

    def test_zero_window_never_turns_adaptive(self):
        b = MicroBatcher(_RecordingDispatch(), window_s=0, adaptive=True)
        assert b.adaptive is False
        assert b.effective_window_s() == 0

    def test_cold_start_is_half_the_ceiling(self):
        # Seeded at one full window between arrivals -> half ceiling:
        # early clients are neither stalled for 1 ms nor unbatchable.
        b = MicroBatcher(_RecordingDispatch(), window_s=0.001, adaptive=True)
        assert b.effective_window_s() == pytest.approx(0.0005)

    def test_saturation_keeps_the_ceiling(self):
        b = MicroBatcher(_RecordingDispatch(), window_s=0.001, adaptive=True)
        b._ema_gap = 0.001 / 16  # 16 arrivals expected per window
        assert b.effective_window_s() == pytest.approx(0.001)

    def test_sparse_arrivals_collapse_the_window(self):
        b = MicroBatcher(_RecordingDispatch(), window_s=0.001, adaptive=True)
        b._ema_gap = 0.5  # one request every half second
        assert b.effective_window_s() < 0.001 * 0.002
        b._ema_gap = 0.001  # exactly one companion expected
        assert b.effective_window_s() == pytest.approx(0.0005)

    def test_submissions_feed_the_interarrival_ema(self):
        dispatch = _RecordingDispatch()
        b = MicroBatcher(dispatch, window_s=0.02, adaptive=True).start()
        try:
            for _ in range(4):
                b.submit([(0, 0)])
                time.sleep(0.08)  # arrivals 4x sparser than the window
            # EMA converged toward the real ~80 ms gap, far above the
            # 20 ms window -> the effective window has collapsed.
            assert b._ema_gap > 0.04
            assert b.effective_window_s() < 0.02 / 2
            stats = b.stats()
            assert stats["adaptive"] is True
            assert stats["effective_window_ms"] < 10.0
        finally:
            b.close()

    def test_sparse_dispatch_latency_beats_the_ceiling(self):
        # Behavioral: with a deliberately huge 150 ms ceiling, sparse
        # lone requests must not pay it once the EMA has seen the gaps.
        dispatch = _RecordingDispatch()
        b = MicroBatcher(dispatch, window_s=0.15, adaptive=True).start()
        try:
            for _ in range(3):  # teach the EMA the arrival rate
                b.submit([(1, 2)])
                time.sleep(0.05)
            t0 = time.perf_counter()
            b.submit([(3, 4)])
            elapsed = time.perf_counter() - t0
            assert elapsed < 0.1, (
                f"sparse request waited {elapsed * 1000:.1f} ms under a "
                f"150 ms ceiling; adaptive window did not shrink"
            )
        finally:
            b.close()

    def test_burst_still_coalesces_at_the_ceiling(self):
        # Saturation: many threads submitting at once must still merge
        # into few batches (the ceiling is preserved under load).
        dispatch = _RecordingDispatch()
        b = MicroBatcher(dispatch, window_s=0.05, adaptive=True).start()
        try:
            b._ema_gap = 0.0005  # pretend the EMA already saw saturation
            threads = [
                threading.Thread(target=lambda i=i: b.submit([(i, i)]))
                for i in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert b.stats()["coalesced_batches"] >= 1
        finally:
            b.close()
