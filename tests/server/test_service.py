"""Tests for the query service, worker pool, TCP server, and HTTP fallback.

The acceptance property lives here: served answers are **bit-identical**
to a direct :class:`CompiledOracle` on the same artifact — for every
registered method through the facade pipeline artifact, across seeded
DAGs, with batching on and off, in-process and through worker
processes.
"""

import json
import random
import urllib.request

import pytest

from repro.datasets.workloads import equal_workload
from repro.facade import Reachability
from repro.graph.generators import citation_dag, random_dag
from repro.serialization import load_artifact
from repro.server import QueryService, ReachClient, ReachServer, serve_artifact
from repro.server.service import HttpFrontend

ALL_METHODS = [
    "BFS", "DFS", "GL", "GL*", "PT", "PT*", "KR", "PW8", "INT",
    "2HOP", "PL", "TF", "HL", "DL", "CH", "TREE", "DUAL", "3HOP", "ISL",
]


def _mixed_pairs(n, count, seed):
    rng = random.Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


@pytest.fixture(scope="module")
def pipeline_artifact(tmp_path_factory):
    """A DL pipeline artifact + its direct oracle + a mixed workload."""
    g = random_dag(120, 320, seed=3)
    reach = Reachability(g, "DL")
    path = str(tmp_path_factory.mktemp("srv") / "dl.rpro")
    reach.save(path)
    direct = load_artifact(path)
    pairs = _mixed_pairs(g.n, 400, seed=4)
    expected = [bool(a) for a in direct.query_batch(pairs)]
    return path, pairs, expected


class TestQueryService:
    def test_in_process_answers_match_direct(self, pipeline_artifact):
        path, pairs, expected = pipeline_artifact
        with QueryService(path, window_s=0.001) as service:
            assert service.query_pairs(pairs) == expected
            assert service.query(*pairs[0]) == expected[0]

    def test_live_oracle_injection(self):
        g = random_dag(60, 150, seed=5)
        reach = Reachability(g, "DL")
        pairs = _mixed_pairs(g.n, 100, seed=6)
        with QueryService(oracle=reach, window_s=0.0) as service:
            assert service.query_pairs(pairs) == reach.query_batch(pairs)

    def test_cache_serves_second_pass(self, pipeline_artifact):
        path, pairs, expected = pipeline_artifact
        with QueryService(path, cache_size=4096) as service:
            assert service.query_pairs(pairs) == expected
            before = service.cache.stats()["hits"]
            assert service.query_pairs(pairs) == expected  # warm
            stats = service.cache.stats()
            assert stats["hits"] - before == len(pairs)
            # the workload is mostly negative on this sparse DAG:
            assert stats["negative_hits"] > 0

    def test_out_of_range_pair_rejected(self, pipeline_artifact):
        path, _pairs, _expected = pipeline_artifact
        with QueryService(path) as service:
            with pytest.raises(ValueError, match="out of range"):
                service.query_pairs([(0, 10**6)])
            with pytest.raises(ValueError, match="out of range"):
                service.query_pairs([(-1, 0)])

    def test_workers_require_artifact(self):
        g = random_dag(20, 40, seed=7)
        with pytest.raises(ValueError, match="workers=0"):
            QueryService(oracle=Reachability(g), workers=2)
        with pytest.raises(ValueError, match="exactly one"):
            QueryService()

    def test_stats_document_shape(self, pipeline_artifact):
        path, pairs, _expected = pipeline_artifact
        with QueryService(path, cache_size=128) as service:
            service.query_pairs(pairs[:50])
            stats = service.stats()
            assert stats["requests"] == 1
            assert stats["pairs"] == 50
            assert stats["workers"] == 0
            assert "hit_rate" in stats["cache"]
            assert "mean_batch_pairs" in stats["batcher"]
            # pipeline artifacts serve a serve-mode facade underneath
            assert stats["oracle"]["serve_mode"] is True
            assert stats["oracle"]["index"]["method"] == "DL"


class TestWorkerPool:
    def test_worker_answers_match_direct(self, pipeline_artifact):
        path, pairs, expected = pipeline_artifact
        with QueryService(path, workers=2, cache_size=0) as service:
            assert service.query_pairs(pairs) == expected
            pool = service.stats()["pool"]
            assert pool["workers"] == 2
            assert pool["dispatched_batches"] >= 1
            assert pool["worker_errors"] == 0

    def test_single_pair_rides_scalar_path(self, pipeline_artifact):
        path, pairs, expected = pipeline_artifact
        with QueryService(path, workers=1, cache_size=0, window_s=0.0) as service:
            for pair, want in zip(pairs[:20], expected[:20]):
                assert service.query_pairs([pair]) == [want]
            assert service.stats()["single_dispatches"] == 20

    def test_worker_death_on_bad_artifact_fails_fast(self, tmp_path):
        import time

        bad = tmp_path / "garbage.rpro"
        bad.write_bytes(b"not an artifact at all")
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="died loading"):
            QueryService(str(bad), workers=1).start()
        # short-slice polling, not the full 60s start timeout
        assert time.monotonic() - t0 < 30

    def test_close_is_idempotent_and_clean(self, pipeline_artifact):
        path, pairs, _expected = pipeline_artifact
        service = QueryService(path, workers=1).start()
        service.query_pairs(pairs[:10])
        service.close()
        service.close()


class TestWorkerCrashRecovery:
    """SIGKILLed workers fail fast and the pool heals to full strength."""

    def test_sigkill_mid_batch_fails_fast_and_respawns(
        self, pipeline_artifact, monkeypatch
    ):
        import concurrent.futures
        import os
        import signal
        import time

        from repro.server import protocol as proto

        path, pairs, expected = pipeline_artifact
        # The pool forks its workers, so a decode hook patched *before*
        # start() rides into the child: a sentinel-sized batch freezes
        # mid-execution, giving the kill a deterministic window.
        real_decode = proto.decode_pairs

        def gated_decode(payload):
            decoded = real_decode(payload)
            if len(decoded) == 1337:
                time.sleep(30.0)
            return decoded

        monkeypatch.setattr(proto, "decode_pairs", gated_decode)
        service = QueryService(path, workers=1, cache_size=0, window_s=0.0)
        service.start()
        try:
            pool = service._pool
            marked = (pairs * 6)[:1337]
            with concurrent.futures.ThreadPoolExecutor(1) as executor:
                future = executor.submit(service.query_pairs, marked)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline and not pool._active:
                    time.sleep(0.005)
                assert pool._active, "worker never announced the batch"
                (victim_pid,) = pool._active
                os.kill(victim_pid, signal.SIGKILL)
                # Fail-fast: the announced batch dies with the worker —
                # well inside the 30 s the batch would otherwise take.
                t0 = time.monotonic()
                with pytest.raises(RuntimeError, match="safe to retry"):
                    future.result(timeout=20.0)
                assert time.monotonic() - t0 < 10.0
            # ...and the respawned (lazily loading) replacement answers.
            assert service.query_pairs(pairs[:40]) == expected[:40]
            stats = service.stats()["pool"]
            assert stats["respawns"] == 1
            assert stats["worker_errors"] == 1
        finally:
            service.close()

    def test_killing_every_idle_worker_heals_the_pool(self, pipeline_artifact):
        import os
        import signal
        import time

        path, pairs, expected = pipeline_artifact
        service = QueryService(path, workers=2, cache_size=0).start()
        try:
            assert service.query_pairs(pairs) == expected
            pool = service._pool
            for proc in list(pool._procs):
                os.kill(proc.pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if pool.stats()["respawns"] >= 2 and all(
                    p.is_alive() for p in pool._procs
                ):
                    break
                time.sleep(0.05)
            stats = pool.stats()
            assert stats["respawns"] == 2
            # Idle kills lose no batch: errors stay at zero...
            assert stats["worker_errors"] == 0
            # ...and the healed pool still serves bit-identical answers.
            assert service.query_pairs(pairs) == expected
            assert len(pool._procs) == 2
        finally:
            service.close()


class TestReachServer:
    def test_tcp_round_trip_and_stats(self, pipeline_artifact):
        path, pairs, expected = pipeline_artifact
        server = serve_artifact(path, cache_size=256)
        try:
            with ReachClient(*server.address) as client:
                assert client.query_batch(pairs) == expected
                assert client.query(*pairs[0]) == expected[0]
                assert client.ping() < 5.0
                stats = client.stats()
                assert stats["connections_total"] >= 1
                assert stats["pairs"] >= len(pairs)
        finally:
            server.close()

    def test_malformed_query_payload_reports_error(self, pipeline_artifact):
        path, _pairs, _expected = pipeline_artifact
        from repro.server import protocol as proto
        import socket as socket_mod

        server = serve_artifact(path)
        try:
            sock = socket_mod.create_connection(server.address, timeout=10)
            sock.sendall(proto.pack_frame(proto.OP_QUERY, 7, b"\x05"))
            reader = proto.FrameReader(sock)
            op, rid, payload = reader.read_frame()
            assert op == proto.OP_ERROR and rid == 7
            assert b"ProtocolError" in payload
            sock.close()
        finally:
            server.close()

    def test_remote_shutdown_frame(self, pipeline_artifact):
        path, _pairs, _expected = pipeline_artifact
        server = serve_artifact(path, allow_shutdown=True)
        with ReachClient(*server.address) as client:
            client.shutdown_server()
        assert server.wait(10)

    def test_shutdown_can_be_disabled(self, pipeline_artifact):
        path, pairs, expected = pipeline_artifact
        server = serve_artifact(path, allow_shutdown=False)
        try:
            with ReachClient(*server.address) as client:
                with pytest.raises(RuntimeError, match="disabled"):
                    client.shutdown_server()
                # and the server is still answering afterwards
                assert client.query_batch(pairs[:10]) == expected[:10]
        finally:
            server.close()


class TestCloseSemantics:
    """close() is idempotent everywhere, including after a failed start."""

    def test_server_close_is_idempotent(self, pipeline_artifact):
        path, pairs, expected = pipeline_artifact
        server = serve_artifact(path)
        with ReachClient(*server.address) as client:
            assert client.query_batch(pairs[:10]) == expected[:10]
        server.close()
        server.close()

    def test_failed_start_leaves_a_closeable_server(self, pipeline_artifact):
        path, pairs, expected = pipeline_artifact
        occupied = serve_artifact(path)
        try:
            service = QueryService(path).start()
            clashing = ReachServer(service, port=occupied.port)
            with pytest.raises(OSError):
                clashing.start()
            clashing.close()  # failed start: close stays a clean no-op
            clashing.close()
            # the service is untouched and can back a working server
            server = ReachServer(service, owns_service=True).start()
            try:
                with ReachClient(*server.address) as client:
                    assert client.query_batch(pairs[:10]) == expected[:10]
            finally:
                server.close()
        finally:
            occupied.close()

    def test_unstarted_service_close_is_safe(self, pipeline_artifact):
        path, _pairs, _expected = pipeline_artifact
        service = QueryService(path, workers=1)  # never start()ed
        service.close()
        service.close()


class TestHttpFallback:
    def test_query_stats_and_health(self, pipeline_artifact):
        path, pairs, expected = pipeline_artifact
        with QueryService(path) as service:
            http = HttpFrontend(service).start()
            try:
                base = f"http://{http.host}:{http.port}"
                req = urllib.request.Request(
                    f"{base}/query",
                    data=json.dumps({"pairs": pairs[:25]}).encode(),
                    method="POST",
                )
                doc = json.loads(urllib.request.urlopen(req).read())
                assert doc["answers"] == expected[:25]
                assert doc["count"] == 25
                stats = json.loads(urllib.request.urlopen(f"{base}/stats").read())
                assert stats["pairs"] >= 25
                health = json.loads(urllib.request.urlopen(f"{base}/healthz").read())
                assert health == {"ok": True}
            finally:
                http.close()

    def test_bad_request_is_400_not_crash(self, pipeline_artifact):
        path, _pairs, _expected = pipeline_artifact
        with QueryService(path) as service:
            http = HttpFrontend(service).start()
            try:
                req = urllib.request.Request(
                    f"http://{http.host}:{http.port}/query",
                    data=b'{"nope": 1}',
                    method="POST",
                )
                with pytest.raises(urllib.error.HTTPError) as exc_info:
                    urllib.request.urlopen(req)
                assert exc_info.value.code == 400
            finally:
                http.close()


class TestServedBitIdentical:
    """The acceptance property: served == direct CompiledOracle."""

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_every_method_through_pipeline_artifact(self, method, tmp_path):
        g = random_dag(70, 180, seed=11)
        reach = Reachability(g, method)
        path = str(tmp_path / "m.rpro")
        reach.save(path)
        direct = load_artifact(path)
        pairs = _mixed_pairs(g.n, 150, seed=12)
        expected = [bool(a) for a in direct.query_batch(pairs)]
        server = serve_artifact(path, window_s=0.001)
        try:
            with ReachClient(*server.address) as client:
                assert client.query_batch(pairs) == expected
        finally:
            server.close()

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("window_s", [0.0, 0.001])
    def test_seeded_dags_batching_on_and_off(self, seed, window_s, tmp_path):
        g = citation_dag(150, out_per_vertex=2.5, seed=seed)
        reach = Reachability(g, "DL")
        path = str(tmp_path / "s.rpro")
        reach.save(path)
        direct = load_artifact(path)
        wl = equal_workload(g, 120, seed=seed + 100)
        pairs = list(wl.pairs) + _mixed_pairs(g.n, 80, seed=seed + 200)
        expected = [bool(a) for a in direct.query_batch(pairs)]
        server = serve_artifact(path, window_s=window_s, cache_size=64)
        try:
            with ReachClient(*server.address) as client:
                assert client.query_batch(pairs) == expected
                # one-by-one as well (scalar fallback + cache path)
                for pair, want in zip(pairs[:30], expected[:30]):
                    assert client.query(*pair) == want
        finally:
            server.close()

    def test_worker_processes_share_artifact_and_answers(self, tmp_path):
        g = random_dag(150, 400, seed=21)
        reach = Reachability(g, "DL")
        path = str(tmp_path / "w.rpro")
        reach.save(path)
        direct = load_artifact(path)
        pairs = _mixed_pairs(g.n, 300, seed=22)
        expected = [bool(a) for a in direct.query_batch(pairs)]
        server = serve_artifact(path, workers=2, window_s=0.001, cache_size=0)
        try:
            with ReachClient(*server.address) as client:
                assert client.query_batch(pairs) == expected
        finally:
            server.close()
