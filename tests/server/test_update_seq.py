"""Wire-level idempotent updates: OP_UPDATE_SEQ end to end.

The contract: a (client, seq) pair names ONE logical update.  The
server applies it at most once no matter how many times the bytes
arrive — which is what makes the client's retry-after-reconnect safe,
including the nasty case where the reply (not the request) is lost.
"""

import pytest

from repro.cluster import ChaosProxy
from repro.facade import Reachability
from repro.graph.digraph import DiGraph
from repro.server import ReachClient
from repro.server import protocol as proto


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_roundtrip(self):
        payload = proto.encode_update_seq("cli-1", 42, [(1, 2), (3, 4)])
        client, seq, ops = proto.decode_update_seq(payload)
        assert client == "cli-1"
        assert seq == 42
        assert ops == [("+", 1, 2), ("+", 3, 4)]

    def test_roundtrip_with_removals(self):
        payload = proto.encode_update_seq(
            "cli-1", 7, [(1, 2), ("-", 3, 4), ("+", 5, 6)]
        )
        client, seq, ops = proto.decode_update_seq(payload)
        assert (client, seq) == ("cli-1", 7)
        assert ops == [("+", 1, 2), ("-", 3, 4), ("+", 5, 6)]

    def test_unicode_client_and_empty_edges(self):
        payload = proto.encode_update_seq("ué", 0, [])
        assert proto.decode_update_seq(payload) == ("ué", 0, [])

    def test_empty_client_rejected(self):
        with pytest.raises(proto.ProtocolError):
            proto.encode_update_seq("", 1, [(0, 1)])

    def test_oversized_client_rejected(self):
        with pytest.raises(proto.ProtocolError):
            proto.encode_update_seq("x" * 70_000, 1, [(0, 1)])

    def test_negative_seq_rejected(self):
        with pytest.raises(proto.ProtocolError):
            proto.encode_update_seq("c", -1, [(0, 1)])

    def test_truncated_payloads_rejected(self):
        payload = proto.encode_update_seq("client", 9, [(1, 2)])
        for cut in (0, 1, 3, len(payload) - 9):
            with pytest.raises(proto.ProtocolError):
                proto.decode_update_seq(payload[:cut])


# ----------------------------------------------------------------------
# Live server semantics
# ----------------------------------------------------------------------
@pytest.fixture()
def live_server():
    g = DiGraph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
    r = Reachability(g, "DL")
    server = r.serve(live=True)
    yield server
    server.close()


class TestSequencedUpdates:
    def test_update_applies_and_echoes_identity(self, live_server):
        with ReachClient(*live_server.address) as c:
            assert c.query(0, 3) is False
            reply = c.update([(1, 2)])
            assert reply["client"] == c.client_id
            assert reply["seq"] == 1
            assert reply["deduped"] is False
            assert c.query(0, 3) is True

    def test_resend_is_deduped_and_changes_nothing(self, live_server):
        with ReachClient(*live_server.address) as c:
            first = c.update([(1, 2)], client="alice", seq=7)
            again = c.update([(1, 2)], client="alice", seq=7)
            assert first["deduped"] is False
            assert again["deduped"] is True
            # identical summary apart from the dedup flag
            assert {k: v for k, v in again.items() if k != "deduped"} == {
                k: v for k, v in first.items() if k != "deduped"
            }

    def test_seq_regression_is_an_error_not_a_replay(self, live_server):
        with ReachClient(*live_server.address) as c:
            c.update([(1, 2)], client="bob", seq=5)
            with pytest.raises(RuntimeError, match="[Ss]tale|sequence"):
                c.update([(3, 4)], client="bob", seq=4)

    def test_distinct_clients_do_not_share_windows(self, live_server):
        with ReachClient(*live_server.address) as a, ReachClient(
            *live_server.address
        ) as b:
            ra = a.update([(1, 2)])
            rb = b.update([(3, 4)])
            assert ra["seq"] == rb["seq"] == 1
            assert ra["client"] != rb["client"]
            assert rb["deduped"] is False

    def test_legacy_unsequenced_path_still_works(self, live_server):
        with ReachClient(*live_server.address) as c:
            reply = c.update([(1, 2)], idempotent=False)
            assert "client" not in reply
            assert c.query(0, 3) is True
            with pytest.raises(ValueError):
                c.update([(3, 4)], idempotent=False, seq=1)

    def test_mixed_ops_apply_atomically_over_the_wire(self, live_server):
        with ReachClient(*live_server.address) as c:
            reply = c.update([("+", 1, 2), ("-", 2, 3), (3, 4)])
            assert reply["inserts"] == 2 and reply["removals"] == 1
            assert c.query(0, 2) is True    # via the new 1->2
            assert c.query(0, 3) is False   # 2->3 was removed
            assert c.query(3, 5) is True    # via the new 3->4
            # removing an absent edge journals/applies nothing and the
            # server answers with a normal summary (kind: absent noop)
            reply = c.update([("-", 0, 5)])
            assert reply["absent"] == 1 and reply["changed"] == 0

    def test_lost_reply_then_resend_applies_exactly_once(self, live_server):
        """The reply — not the request — is cut mid-flight.  The server
        HAS applied the update; the resend must dedupe, not double-apply."""
        with ChaosProxy(*live_server.address) as chaos:
            lossy = ReachClient(
                chaos.host, chaos.port, reconnect_attempts=0
            )
            chaos.set_mode("half_write", half_write_bytes=5)
            with pytest.raises(ConnectionError):
                lossy.update([(1, 2)], client="carol", seq=3)
            lossy.close()
        # reconnect "after the outage", straight to the server this time
        with ReachClient(*live_server.address) as c:
            reply = c.update([(1, 2)], client="carol", seq=3)
            assert reply["deduped"] is True  # proof the first send landed
            assert c.query(0, 3) is True
