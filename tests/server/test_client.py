"""Tests for the client and the open/closed-loop load generator."""

import random

import pytest

from repro.facade import Reachability
from repro.graph.generators import random_dag
from repro.serialization import load_artifact
from repro.server import percentiles, run_load, serve_artifact


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    g = random_dag(100, 260, seed=31)
    reach = Reachability(g, "DL")
    path = str(tmp_path_factory.mktemp("load") / "g.rpro")
    reach.save(path)
    direct = load_artifact(path)
    rng = random.Random(32)
    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(240)]
    expected = [bool(a) for a in direct.query_batch(pairs)]
    server = serve_artifact(path, cache_size=0)
    yield server, pairs, expected
    server.close()


class TestPercentiles:
    def test_known_distribution(self):
        samples = list(range(1, 101))  # 1..100
        pct = percentiles(samples)
        assert pct["p50"] == 50
        assert pct["p95"] == 95
        assert pct["p99"] == 99
        assert pct["p99.9"] == 100  # nearest-rank: ceil(.999 * 100) = 100

    def test_empty_and_single(self):
        assert percentiles([]) == {}
        pct = percentiles([7.0])
        assert pct == {"p50": 7.0, "p95": 7.0, "p99": 7.0, "p99.9": 7.0}

    def test_odd_count_median_is_true_median(self):
        # nearest-rank, not banker's rounding: p50 of 5 samples is the
        # 3rd ordered value
        assert percentiles([5, 4, 3, 2, 1])["p50"] == 3


class TestClosedLoop:
    def test_answers_in_workload_order(self, served):
        server, pairs, expected = served
        report = run_load(*server.address, pairs, connections=3, pipeline=8)
        assert report.errors == 0, report.first_error
        assert report.answers == expected
        assert report.total_pairs == len(pairs)
        assert report.qps > 0
        assert report.positives == sum(expected)

    def test_latency_percentiles_present_and_ordered(self, served):
        server, pairs, _expected = served
        report = run_load(*server.address, pairs, connections=2, pipeline=16)
        lat = report.latency_ms
        assert set(lat) == {"p50", "p95", "p99", "p99.9"}
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["p99.9"]
        assert "q/s" in report.summary()

    def test_multi_pair_requests(self, served):
        server, pairs, expected = served
        report = run_load(
            *server.address, pairs, connections=2, pairs_per_request=7
        )
        assert report.errors == 0
        assert report.answers == expected
        assert report.total_requests == (len(pairs) + 6) // 7


class TestOpenLoop:
    def test_fixed_rate_run(self, served):
        server, pairs, expected = served
        report = run_load(
            *server.address,
            pairs[:100],
            mode="open",
            rate=4000,
            connections=2,
        )
        assert report.errors == 0, report.first_error
        assert report.answers == expected[:100]
        # 100 requests at 4000/s should take about 25 ms; allow wild
        # scheduler noise but catch a broken pacing loop (instant or
        # minutes-long runs).
        assert 0.01 <= report.wall_s <= 5.0

    def test_open_loop_requires_rate(self, served):
        server, pairs, _expected = served
        with pytest.raises(ValueError, match="rate"):
            run_load(*server.address, pairs, mode="open")

    def test_unknown_mode_rejected(self, served):
        server, pairs, _expected = served
        with pytest.raises(ValueError, match="mode"):
            run_load(*server.address, pairs, mode="sideways")

    def test_empty_workload_rejected(self, served):
        server, _pairs, _expected = served
        with pytest.raises(ValueError, match="empty"):
            run_load(*server.address, [])


class TestReconnect:
    """Satellite hardening: connect/request deadlines and bounded
    reconnect-with-backoff on transport failures."""

    def _fresh_server(self, served):
        # A second server over the same artifact, for restart drills.
        server, _pairs, _expected = served
        return server

    def test_client_rides_out_a_server_restart(self, tmp_path):
        from repro.server import ReachClient, serve_artifact

        g = random_dag(60, 150, seed=41)
        path = str(tmp_path / "g.rpro")
        Reachability(g, "DL").save(path)
        direct = load_artifact(path)
        rng = random.Random(42)
        pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(50)]
        expected = [bool(a) for a in direct.query_batch(pairs)]

        server = serve_artifact(path)
        host, port = server.address
        client = ReachClient(
            host, port, reconnect_attempts=3, reconnect_backoff_s=0.05
        )
        try:
            assert client.query_batch(pairs) == expected
            server.close()  # the established connection dies
            server = serve_artifact(path, host=host, port=port)  # same port
            assert client.query_batch(pairs) == expected
            assert client.reconnects >= 1
        finally:
            client.close()
            server.close()

    def test_retries_exhausted_is_a_clear_connection_error(self, tmp_path):
        from repro.server import ReachClient, serve_artifact

        g = random_dag(40, 90, seed=43)
        path = str(tmp_path / "g.rpro")
        Reachability(g, "DL").save(path)
        server = serve_artifact(path)
        client = ReachClient(
            *server.address, reconnect_attempts=2, reconnect_backoff_s=0.01,
            connect_timeout=0.3,
        )
        try:
            assert client.ping()
            server.close()  # gone for good: every reconnect is refused
            with pytest.raises(ConnectionError, match="2 reconnect attempt"):
                client.ping()
        finally:
            client.close()

    def test_refused_dial_surfaces_at_construction(self):
        # The client connects eagerly: a dead port fails the constructor
        # with a ConnectionError, not a later request.
        from repro.server import ReachClient

        with pytest.raises(ConnectionError):
            ReachClient("127.0.0.1", 1, connect_timeout=0.3,
                        reconnect_attempts=0)

    def test_connect_timeout_bounds_the_first_dial(self):
        import time

        from repro.server import ReachClient

        # RFC 5737 TEST-NET: packets go nowhere, the dial must time out.
        client = ReachClient(
            "192.0.2.1", 7430, connect_timeout=0.3, reconnect_attempts=0
        )
        t0 = time.monotonic()
        with pytest.raises(ConnectionError):
            client.ping()
        assert time.monotonic() - t0 < 5.0
        client.close()

    def test_unsequenced_updates_are_never_retried_across_reconnects(
        self, served
    ):
        # Legacy OP_UPDATE carries no dedupe identity, so a transport
        # error mid-update must surface, not silently re-apply on a
        # fresh connection.
        from repro.server import ReachClient

        server, _pairs, _expected = served
        client = ReachClient(
            *server.address, reconnect_attempts=3, reconnect_backoff_s=0.01
        )
        try:
            client._sock.close()  # sabotage the established connection
            with pytest.raises((OSError, ConnectionError)) as excinfo:
                client.update([(0, 1)], idempotent=False)
            # and it failed without burning reconnect attempts
            assert "reconnect attempt" not in str(excinfo.value)
        finally:
            client.close()

    def test_sequenced_updates_retry_across_reconnects(self, served):
        # The default path carries (client, seq), so the client IS
        # allowed to re-send it on a fresh connection.  This artifact
        # server has no update path at all, so reaching its application
        # error proves the retry crossed the reconnect.
        from repro.server import ReachClient

        server, _pairs, _expected = served
        client = ReachClient(
            *server.address, reconnect_attempts=3, reconnect_backoff_s=0.01
        )
        try:
            client._sock.close()  # sabotage the established connection
            with pytest.raises(RuntimeError, match="update"):
                client.update([(0, 1)])
            assert client.reconnects >= 1
        finally:
            client.close()

    def test_close_is_idempotent(self, served):
        from repro.server import ReachClient

        server, _pairs, _expected = served
        client = ReachClient(*server.address)
        client.close()
        client.close()
