"""Tests for the client and the open/closed-loop load generator."""

import random

import pytest

from repro.facade import Reachability
from repro.graph.generators import random_dag
from repro.serialization import load_artifact
from repro.server import percentiles, run_load, serve_artifact


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    g = random_dag(100, 260, seed=31)
    reach = Reachability(g, "DL")
    path = str(tmp_path_factory.mktemp("load") / "g.rpro")
    reach.save(path)
    direct = load_artifact(path)
    rng = random.Random(32)
    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(240)]
    expected = [bool(a) for a in direct.query_batch(pairs)]
    server = serve_artifact(path, cache_size=0)
    yield server, pairs, expected
    server.close()


class TestPercentiles:
    def test_known_distribution(self):
        samples = list(range(1, 101))  # 1..100
        pct = percentiles(samples)
        assert pct["p50"] == 50
        assert pct["p95"] == 95
        assert pct["p99"] == 99

    def test_empty_and_single(self):
        assert percentiles([]) == {}
        pct = percentiles([7.0])
        assert pct == {"p50": 7.0, "p95": 7.0, "p99": 7.0}

    def test_odd_count_median_is_true_median(self):
        # nearest-rank, not banker's rounding: p50 of 5 samples is the
        # 3rd ordered value
        assert percentiles([5, 4, 3, 2, 1])["p50"] == 3


class TestClosedLoop:
    def test_answers_in_workload_order(self, served):
        server, pairs, expected = served
        report = run_load(*server.address, pairs, connections=3, pipeline=8)
        assert report.errors == 0, report.first_error
        assert report.answers == expected
        assert report.total_pairs == len(pairs)
        assert report.qps > 0
        assert report.positives == sum(expected)

    def test_latency_percentiles_present_and_ordered(self, served):
        server, pairs, _expected = served
        report = run_load(*server.address, pairs, connections=2, pipeline=16)
        lat = report.latency_ms
        assert set(lat) == {"p50", "p95", "p99"}
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"]
        assert "q/s" in report.summary()

    def test_multi_pair_requests(self, served):
        server, pairs, expected = served
        report = run_load(
            *server.address, pairs, connections=2, pairs_per_request=7
        )
        assert report.errors == 0
        assert report.answers == expected
        assert report.total_requests == (len(pairs) + 6) // 7


class TestOpenLoop:
    def test_fixed_rate_run(self, served):
        server, pairs, expected = served
        report = run_load(
            *server.address,
            pairs[:100],
            mode="open",
            rate=4000,
            connections=2,
        )
        assert report.errors == 0, report.first_error
        assert report.answers == expected[:100]
        # 100 requests at 4000/s should take about 25 ms; allow wild
        # scheduler noise but catch a broken pacing loop (instant or
        # minutes-long runs).
        assert 0.01 <= report.wall_s <= 5.0

    def test_open_loop_requires_rate(self, served):
        server, pairs, _expected = served
        with pytest.raises(ValueError, match="rate"):
            run_load(*server.address, pairs, mode="open")

    def test_unknown_mode_rejected(self, served):
        server, pairs, _expected = served
        with pytest.raises(ValueError, match="mode"):
            run_load(*server.address, pairs, mode="sideways")

    def test_empty_workload_rejected(self, served):
        server, _pairs, _expected = served
        with pytest.raises(ValueError, match="empty"):
            run_load(*server.address, [])
