"""Tests for label oracle serialization."""

import json

import pytest

from repro.core.distribution import DistributionLabeling
from repro.core.hierarchical import HierarchicalLabeling
from repro.baselines.tflabel import TFLabel
from repro.baselines.grail import Grail
from repro.serialization import FrozenOracle, load_labels, save_labels
from repro.graph.generators import random_dag


@pytest.mark.parametrize("cls", [DistributionLabeling, HierarchicalLabeling, TFLabel])
class TestRoundTrip:
    def test_queries_preserved(self, cls, tmp_path):
        g = random_dag(40, 100, seed=1)
        idx = cls(g)
        path = tmp_path / "labels.json"
        save_labels(idx, path)
        frozen = load_labels(path)
        for u in range(g.n):
            for v in range(g.n):
                assert frozen.query(u, v) == idx.query(u, v)

    def test_size_preserved(self, cls, tmp_path):
        g = random_dag(30, 70, seed=2)
        idx = cls(g)
        path = tmp_path / "labels.json"
        save_labels(idx, path)
        assert load_labels(path).index_size_ints() == idx.index_size_ints()


class TestValidation:
    def test_non_label_index_rejected(self, tmp_path):
        g = random_dag(20, 40, seed=3)
        with pytest.raises(TypeError):
            save_labels(Grail(g), tmp_path / "x.json")

    def test_bad_version_rejected(self, tmp_path):
        g = random_dag(10, 20, seed=4)
        path = tmp_path / "labels.json"
        save_labels(DistributionLabeling(g), path)
        doc = json.loads(path.read_text())
        doc["format_version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="version"):
            load_labels(path)

    def test_unsorted_labels_rejected(self, tmp_path):
        g = random_dag(10, 20, seed=5)
        path = tmp_path / "labels.json"
        save_labels(DistributionLabeling(g), path)
        doc = json.loads(path.read_text())
        # Corrupt one label.
        for labels in doc["labels"]["lout"]:
            if len(labels) >= 2:
                labels[0], labels[1] = labels[1], labels[0]
                break
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="sorted"):
            load_labels(path)

    def test_method_recorded(self, tmp_path):
        g = random_dag(10, 20, seed=6)
        path = tmp_path / "labels.json"
        save_labels(DistributionLabeling(g), path)
        frozen = load_labels(path)
        assert frozen.method == "DL"
        assert frozen.rank_space
        assert "FrozenOracle" in repr(frozen)


class TestResealOnLoad:
    """Round-trips must rebuild the sealed query structures exactly."""

    def test_loaded_oracle_is_sealed_with_masks(self, tmp_path):
        g = random_dag(40, 110, seed=8)
        dl = DistributionLabeling(g)
        path = tmp_path / "labels.json"
        save_labels(dl, path)
        frozen = load_labels(path)
        assert frozen.labels.sealed
        # Small hop spaces get the bigint-mask fast path back on load.
        assert frozen.labels._out_masks is not None

    def test_loaded_query_batch_matches_original(self, tmp_path):
        g = random_dag(35, 90, seed=9)
        dl = DistributionLabeling(g)
        path = tmp_path / "labels.json"
        save_labels(dl, path)
        frozen = load_labels(path)
        pairs = [(u, v) for u in range(g.n) for v in range(g.n)]
        assert frozen.query_batch(pairs) == dl.query_batch(pairs)

    def test_loaded_arena_matches_lists(self, tmp_path):
        g = random_dag(30, 70, seed=10)
        dl = DistributionLabeling(g)
        path = tmp_path / "labels.json"
        save_labels(dl, path)
        labels = load_labels(path).labels
        out_hops, out_offs, in_hops, in_offs = labels.arena()
        flat = [h for lab in labels.lout for h in lab]
        assert list(out_hops) == flat
        assert out_offs[-1] == len(flat)
        assert in_offs[-1] == len(in_hops)
