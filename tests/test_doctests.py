"""Run the doctests embedded in public docstrings.

The examples in docstrings are part of the documentation deliverable;
this keeps them executable and honest.
"""

import doctest

import pytest

import repro
import repro.baselines.interval
import repro.baselines.intervals
import repro.baselines.pathtree
import repro.baselines.pruned_landmark
import repro.baselines.twohop
import repro.core.distribution
import repro.core.dynamic
import repro.core.hierarchical
import repro.facade
import repro.graph.digraph
import repro.graph.scc

MODULES = [
    repro,
    repro.facade,
    repro.graph.digraph,
    repro.graph.scc,
    repro.core.distribution,
    repro.core.dynamic,
    repro.core.hierarchical,
    repro.baselines.interval,
    repro.baselines.intervals,
    repro.baselines.pathtree,
    repro.baselines.pruned_landmark,
    repro.baselines.twohop,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tested = doctest.testmod(module).failed, doctest.testmod(module).attempted
    assert failures == 0
    assert tested > 0, f"{module.__name__} has no doctests — example rot?"
