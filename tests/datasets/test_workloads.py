"""Tests for workload generation."""

import pytest

from repro.baselines.online import OnlineBFS
from repro.datasets.workloads import Workload, equal_workload, random_workload
from repro.graph.digraph import DiGraph
from repro.graph.generators import citation_dag, random_dag


class TestRandomWorkload:
    def test_count_and_bounds(self):
        g = random_dag(50, 120, seed=1)
        wl = random_workload(g, 200, seed=2)
        assert len(wl) == 200
        assert all(0 <= u < 50 and 0 <= v < 50 for u, v in wl)

    def test_deterministic(self):
        g = random_dag(30, 60, seed=1)
        assert random_workload(g, 50, seed=3).pairs == random_workload(g, 50, seed=3).pairs

    def test_empty_graph(self):
        wl = random_workload(DiGraph(0), 10)
        assert len(wl) == 0


class TestEqualWorkload:
    def test_positive_fraction_close_to_half(self):
        g = citation_dag(300, 3, seed=1)
        wl = equal_workload(g, 400, seed=2)
        assert 0.35 <= wl.positives / len(wl) <= 0.65

    def test_positives_are_reachable_negatives_not(self):
        g = random_dag(80, 220, seed=3)
        wl = equal_workload(g, 200, seed=4)
        truth = OnlineBFS(g)
        positive_count = sum(1 for u, v in wl if truth.query(u, v))
        assert positive_count == wl.positives

    def test_bfs_sampling_path_used_for_large(self):
        g = citation_dag(500, 3, seed=5)
        wl = equal_workload(g, 100, seed=6, exact_tc_threshold=10)
        truth = OnlineBFS(g)
        positives = sum(1 for u, v in wl if truth.query(u, v))
        assert positives == wl.positives
        assert positives > 0

    def test_deterministic(self):
        g = random_dag(60, 150, seed=7)
        a = equal_workload(g, 100, seed=8)
        b = equal_workload(g, 100, seed=8)
        assert a.pairs == b.pairs

    def test_oracle_reuse(self):
        from repro.core.distribution import DistributionLabeling

        g = random_dag(40, 90, seed=9)
        dl = DistributionLabeling(g)
        wl = equal_workload(g, 60, seed=10, oracle=dl)
        assert len(wl) > 0

    def test_empty_graph(self):
        wl = equal_workload(DiGraph(0), 10)
        assert len(wl) == 0

    def test_edgeless_graph_no_positives(self):
        g = DiGraph(20).freeze()
        wl = equal_workload(g, 40, seed=11)
        assert wl.positives == 0
        assert len(wl) > 0  # negatives still generated


class TestBfsPositiveSampler:
    def test_cap_limits_exploration(self):
        from repro.datasets.workloads import _bfs_positive_sample

        g = citation_dag(400, 3, seed=1)
        rng = __import__("random").Random(2)
        positives = _bfs_positive_sample(g, 50, rng, cap=5)
        truth = OnlineBFS(g)
        assert len(positives) == 50
        for u, v in positives:
            assert truth.query(u, v)
            assert u != v

    def test_gives_up_gracefully_on_edgeless(self):
        from repro.datasets.workloads import _bfs_positive_sample

        g = DiGraph(10).freeze()
        rng = __import__("random").Random(3)
        assert _bfs_positive_sample(g, 5, rng) == []


class TestWorkloadContainer:
    def test_iteration_and_repr(self):
        wl = Workload("x", [(0, 1)], positives=1)
        assert list(wl) == [(0, 1)]
        assert "x" in repr(wl)

    def test_unknown_positive_metadata(self):
        wl = Workload("y", [(0, 1)])
        assert "positives=?" in repr(wl)
