"""Tests for workload generation."""

import pytest

from repro.baselines.online import OnlineBFS
from repro.datasets.workloads import Workload, equal_workload, random_workload
from repro.graph.digraph import DiGraph
from repro.graph.generators import citation_dag, random_dag


class TestRandomWorkload:
    def test_count_and_bounds(self):
        g = random_dag(50, 120, seed=1)
        wl = random_workload(g, 200, seed=2)
        assert len(wl) == 200
        assert all(0 <= u < 50 and 0 <= v < 50 for u, v in wl)

    def test_deterministic(self):
        g = random_dag(30, 60, seed=1)
        assert random_workload(g, 50, seed=3).pairs == random_workload(g, 50, seed=3).pairs

    def test_empty_graph(self):
        wl = random_workload(DiGraph(0), 10)
        assert len(wl) == 0


class TestEqualWorkload:
    def test_positive_fraction_close_to_half(self):
        g = citation_dag(300, 3, seed=1)
        wl = equal_workload(g, 400, seed=2)
        assert 0.35 <= wl.positives / len(wl) <= 0.65

    def test_positives_are_reachable_negatives_not(self):
        g = random_dag(80, 220, seed=3)
        wl = equal_workload(g, 200, seed=4)
        truth = OnlineBFS(g)
        positive_count = sum(1 for u, v in wl if truth.query(u, v))
        assert positive_count == wl.positives

    def test_bfs_sampling_path_used_for_large(self):
        g = citation_dag(500, 3, seed=5)
        wl = equal_workload(g, 100, seed=6, exact_tc_threshold=10)
        truth = OnlineBFS(g)
        positives = sum(1 for u, v in wl if truth.query(u, v))
        assert positives == wl.positives
        assert positives > 0

    def test_deterministic(self):
        g = random_dag(60, 150, seed=7)
        a = equal_workload(g, 100, seed=8)
        b = equal_workload(g, 100, seed=8)
        assert a.pairs == b.pairs

    def test_oracle_reuse(self):
        from repro.core.distribution import DistributionLabeling

        g = random_dag(40, 90, seed=9)
        dl = DistributionLabeling(g)
        wl = equal_workload(g, 60, seed=10, oracle=dl)
        assert len(wl) > 0

    def test_empty_graph(self):
        wl = equal_workload(DiGraph(0), 10)
        assert len(wl) == 0

    def test_edgeless_graph_no_positives(self):
        g = DiGraph(20).freeze()
        wl = equal_workload(g, 40, seed=11)
        assert wl.positives == 0
        assert len(wl) > 0  # negatives still generated


class TestEqualWorkloadInfeasible:
    """Tiny / degenerate graphs where a 50/50 split cannot exist.

    The generator must terminate (bounded rejection sampling), never
    fabricate wrong answers, and degrade by *shrinking* the workload
    rather than looping or raising.
    """

    def test_single_vertex_graph_terminates_empty(self):
        # No u != v pair exists at all: positives unsampleable,
        # negative rejection sampling exhausts its attempt budget.
        g = DiGraph(1).freeze()
        wl = equal_workload(g, 10, seed=1)
        assert wl.positives == 0
        assert wl.pairs == []

    def test_two_vertex_single_edge_cannot_reach_half_positives(self):
        # Only (0, 1) is positive, only (1, 0) negative; both get
        # sampled with repetition, so the count is met but every pair
        # is one of the two legal ones.
        g = DiGraph.from_edges(2, [(0, 1)])
        wl = equal_workload(g, 20, seed=2)
        assert set(wl.pairs) <= {(0, 1), (1, 0)}
        positives = sum(1 for p in wl.pairs if p == (0, 1))
        assert positives == wl.positives

    def test_odd_count_still_terminates(self):
        g = random_dag(30, 70, seed=3)
        wl = equal_workload(g, 7, seed=4)
        assert 0 < len(wl) <= 7

    def test_all_answers_verified_on_tiny_graphs(self):
        # Whatever the degenerate shape produced, the positive metadata
        # must match ground truth exactly.
        for n, edges in [(1, []), (2, [(0, 1)]), (3, [(0, 1), (1, 2)])]:
            g = DiGraph.from_edges(n, edges)
            wl = equal_workload(g, 12, seed=5)
            truth = OnlineBFS(g)
            assert sum(1 for u, v in wl if truth.query(u, v)) == wl.positives


class TestEqualWorkloadFullyConnected:
    """Rejection sampling on complete DAGs (every u < v an edge).

    Half the ordered pairs are positive (u before v) and half negative
    (the reversals), so both samplers must converge quickly — the
    failure mode being guarded is the rejection loop mistaking "dense"
    for "impossible" or vice versa.
    """

    @staticmethod
    def _complete_dag(n):
        return DiGraph.from_edges(
            n, [(u, v) for u in range(n) for v in range(u + 1, n)]
        )

    def test_complete_dag_yields_balanced_workload(self):
        g = self._complete_dag(12)
        wl = equal_workload(g, 60, seed=6)
        assert len(wl) == 60
        assert 0.4 <= wl.positives / len(wl) <= 0.6

    def test_complete_dag_negatives_are_reversals(self):
        g = self._complete_dag(10)
        wl = equal_workload(g, 40, seed=7)
        truth = OnlineBFS(g)
        for u, v in wl.pairs:
            assert truth.query(u, v) == (u < v)

    def test_complete_dag_above_tc_threshold_uses_bfs_sampler(self):
        # Force the large-graph path: positives come from bounded BFS,
        # negatives still from rejection sampling against the oracle.
        g = self._complete_dag(14)
        wl = equal_workload(g, 30, seed=8, exact_tc_threshold=4)
        truth = OnlineBFS(g)
        assert sum(1 for u, v in wl if truth.query(u, v)) == wl.positives
        assert wl.positives > 0


class TestBfsPositiveSampler:
    def test_cap_limits_exploration(self):
        from repro.datasets.workloads import _bfs_positive_sample

        g = citation_dag(400, 3, seed=1)
        rng = __import__("random").Random(2)
        positives = _bfs_positive_sample(g, 50, rng, cap=5)
        truth = OnlineBFS(g)
        assert len(positives) == 50
        for u, v in positives:
            assert truth.query(u, v)
            assert u != v

    def test_gives_up_gracefully_on_edgeless(self):
        from repro.datasets.workloads import _bfs_positive_sample

        g = DiGraph(10).freeze()
        rng = __import__("random").Random(3)
        assert _bfs_positive_sample(g, 5, rng) == []


class TestWorkloadContainer:
    def test_iteration_and_repr(self):
        wl = Workload("x", [(0, 1)], positives=1)
        assert list(wl) == [(0, 1)]
        assert "x" in repr(wl)

    def test_unknown_positive_metadata(self):
        wl = Workload("y", [(0, 1)])
        assert "positives=?" in repr(wl)
