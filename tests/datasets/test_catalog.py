"""Tests for the dataset catalog."""

import pytest

from repro.datasets.catalog import (
    DATASETS,
    LARGE_SUITE,
    SMALL_SUITE,
    dataset_names,
    load,
)
from repro.graph.topo import is_dag


class TestCatalogShape:
    def test_all_paper_datasets_present(self):
        assert len(SMALL_SUITE) == 14
        assert len(LARGE_SUITE) == 13

    def test_expected_names(self):
        for name in ("agrocyc", "arxiv", "p2p", "reactome", "citeseer",
                     "cit-Patents", "uniprotenc_150m", "wiki"):
            assert name in DATASETS

    def test_suites_partition(self):
        assert set(SMALL_SUITE) | set(LARGE_SUITE) == set(DATASETS)
        assert not set(SMALL_SUITE) & set(LARGE_SUITE)

    def test_dataset_names_filter(self):
        assert dataset_names("small") == SMALL_SUITE
        assert dataset_names("large") == LARGE_SUITE
        assert set(dataset_names()) == set(DATASETS)

    def test_paper_sizes_recorded(self):
        d = DATASETS["cit-Patents"]
        assert d.paper_n == 3_774_768
        assert d.paper_m == 16_518_947


class TestStandins:
    @pytest.mark.parametrize("name", SMALL_SUITE)
    def test_small_standins_are_dags(self, name):
        g = load(name)
        assert is_dag(g)
        assert 0 < g.n <= 6000

    def test_large_standins_larger_than_small(self):
        small_max = max(load(n).n for n in SMALL_SUITE)
        large_min = min(load(n).n for n in LARGE_SUITE)
        assert large_min > small_max * 0.8  # suites are scale-separated

    def test_load_memoised(self):
        assert load("kegg") is load("kegg")

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load("nope")

    def test_size_ordering_tracks_paper_within_small_suite(self):
        # The biggest small dataset in the paper (p2p) is also the
        # biggest stand-in; the smallest (reactome) the smallest.
        sizes = {name: load(name).n for name in SMALL_SUITE}
        assert max(sizes, key=sizes.get) == "p2p"
        assert min(sizes, key=sizes.get) == "reactome"

    def test_family_structure_metabolic_sparse(self):
        g = load("agrocyc")
        assert g.m / g.n < 1.5

    def test_family_structure_citation_dense(self):
        g = load("cit-Patents")
        assert g.m / g.n > 2.5

    def test_uniprot_family_is_forest(self):
        g = load("uniprotenc_22m")
        assert g.m <= g.n
