"""UpdateJournal: append/replay/compact, fsync policies, damage rules.

The headline property test (`test_torn_tail_every_byte_offset`) is the
crash-safety contract in miniature: cut the journal at EVERY byte
offset inside the tail record and reopening must recover exactly the
complete prefix — never crash, never invent a record, never lose an
earlier one.
"""

import os
import shutil
import threading

import pytest

from repro.durability import JournalError, UpdateJournal
from repro.durability.journal import SYNC_POLICIES


def _segments(directory):
    return sorted(
        f for f in os.listdir(directory) if f.startswith("journal-")
    )


def _append_n(journal, count, *, start=0, client="c"):
    lsns = []
    for i in range(start, start + count):
        lsns.append(
            journal.append([(i, i + 1), (i, i + 2)], client=client, seq=i + 1)
        )
    return lsns


# ----------------------------------------------------------------------
# Roundtrip + policies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("sync", SYNC_POLICIES)
def test_append_replay_roundtrip(tmp_path, sync):
    d = str(tmp_path / "wal")
    with UpdateJournal(d, sync=sync, sync_interval_s=0.002) as j:
        lsns = _append_n(j, 10)
    assert lsns == list(range(1, 11))
    with UpdateJournal(d, sync="off") as j:
        records = list(j.replay())
        assert [r.lsn for r in records] == lsns
        assert records[0].edges == ((0, 1), (0, 2))
        assert records[3].client == "c"
        assert records[3].seq == 4
        # replay(after=) yields strictly past the watermark
        assert [r.lsn for r in j.replay(after=7)] == [8, 9, 10]
        # and appends continue the LSN sequence
        assert j.append([(99, 100)]) == 11


def test_anonymous_records_have_no_dedupe_identity(tmp_path):
    with UpdateJournal(str(tmp_path / "wal"), sync="off") as j:
        j.append([(1, 2)])
        (rec,) = j.replay()
        assert rec.client is None and rec.seq is None


def test_rotation_and_compaction(tmp_path):
    d = str(tmp_path / "wal")
    with UpdateJournal(d, sync="off", segment_bytes=1024) as j:
        _append_n(j, 100)
        assert len(_segments(d)) > 3
        all_lsns = [r.lsn for r in j.replay()]
        assert all_lsns == list(range(1, 101))
        # Compaction only unlinks segments entirely <= the watermark,
        # and never the active one.
        before = len(_segments(d))
        deleted = j.compact(50)
        assert 0 < deleted < before
        assert [r.lsn for r in j.replay()][-1] == 100
        # Everything still replayable is > the newest fully-compacted
        # prefix; no record <= watermark is *required* to survive.
        assert min(r.lsn for r in j.replay()) <= 51
        # Active segment survives even a watermark past the end.
        j.compact(10_000)
        assert len(_segments(d)) >= 1
        assert j.append([(0, 1)]) == 101


def test_interval_group_commit_under_concurrency(tmp_path):
    d = str(tmp_path / "wal")
    j = UpdateJournal(d, sync="interval", sync_interval_s=0.001)
    lsns = []
    lock = threading.Lock()

    def worker(k):
        for i in range(25):
            lsn = j.append([(k, 1000 + i)], client=f"w{k}", seq=i + 1)
            with lock:
                lsns.append(lsn)

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    j.close()
    assert sorted(lsns) == list(range(1, 101))
    with UpdateJournal(d, sync="off") as j2:
        assert [r.lsn for r in j2.replay()] == list(range(1, 101))


# ----------------------------------------------------------------------
# Damage
# ----------------------------------------------------------------------
def test_torn_tail_every_byte_offset(tmp_path):
    """Truncate at every offset inside the tail record; replay must
    recover exactly the complete prefix."""
    master = str(tmp_path / "master")
    with UpdateJournal(master, sync="always") as j:
        _append_n(j, 5)
        seg = os.path.join(master, _segments(master)[-1])
        tail_start = os.path.getsize(seg)
        j.append([(7, 8), (7, 9), (7, 10)], client="tail", seq=6)
    tail_end = os.path.getsize(seg)
    assert tail_end > tail_start

    for cut in range(tail_start, tail_end):
        trial = str(tmp_path / f"cut-{cut}")
        shutil.copytree(master, trial)
        tseg = os.path.join(trial, os.path.basename(seg))
        with open(tseg, "r+b") as fh:
            fh.truncate(cut)
        with UpdateJournal(trial, sync="off") as j:
            # exactly the complete prefix: all five full records, the
            # torn tail dropped, nothing invented
            assert [r.lsn for r in j.replay()] == [1, 2, 3, 4, 5]
            if cut > tail_start:
                assert j.recovery["truncated_bytes"] == cut - tail_start
            # the journal is writable again and re-issues the torn LSN
            assert j.append([(7, 8)]) == 6
        shutil.rmtree(trial)


def test_crc_corruption_in_last_segment_truncates(tmp_path):
    d = str(tmp_path / "wal")
    with UpdateJournal(d, sync="always") as j:
        _append_n(j, 4)
        seg = os.path.join(d, _segments(d)[-1])
        keep = os.path.getsize(seg)
        j.append([(50, 51)], client="c", seq=5)
    # flip one payload byte of the final record
    with open(seg, "r+b") as fh:
        fh.seek(keep + 9)
        byte = fh.read(1)
        fh.seek(keep + 9)
        fh.write(bytes([byte[0] ^ 0xFF]))
    with UpdateJournal(d, sync="off") as j:
        assert [r.lsn for r in j.replay()] == [1, 2, 3, 4]
        assert j.recovery["truncated_bytes"] > 0
        assert "crc" in j.recovery["truncated_reason"].lower()


def test_damage_in_earlier_segment_refuses(tmp_path):
    """A non-tail segment is all acked history: damage there must raise,
    never silently repair."""
    d = str(tmp_path / "wal")
    with UpdateJournal(d, sync="always", segment_bytes=1024) as j:
        _append_n(j, 100)
    segs = _segments(d)
    assert len(segs) > 2
    victim = os.path.join(d, segs[0])
    with open(victim, "r+b") as fh:
        fh.seek(os.path.getsize(victim) - 3)
        fh.write(b"\xde\xad")
    with pytest.raises(JournalError):
        UpdateJournal(d, sync="off")


def test_bad_sync_policy_rejected(tmp_path):
    with pytest.raises(ValueError):
        UpdateJournal(str(tmp_path / "wal"), sync="fsync-sometimes")


# ----------------------------------------------------------------------
# Churn records (kind 2): removals in the WAL
# ----------------------------------------------------------------------
def test_churn_record_roundtrip(tmp_path):
    with UpdateJournal(str(tmp_path / "wal"), sync="always") as j:
        j.append([(1, 2), ("-", 3, 4), ("+", 5, 6)], client="c", seq=1)
        j.append([(7, 8)])  # insert-only stays a kind-1 record
    with UpdateJournal(str(tmp_path / "wal"), sync="off") as j:
        churn, plain = j.replay()
        assert churn.ops == (("+", 1, 2), ("-", 3, 4), ("+", 5, 6))
        assert churn.removed == (False, True, False)
        assert churn.edges == ((1, 2), (3, 4), (5, 6))
        assert plain.ops == (("+", 7, 8),)
        assert plain.removed == ()


def test_churn_record_survives_torn_tail(tmp_path):
    d = str(tmp_path / "wal")
    with UpdateJournal(d, sync="always") as j:
        j.append([("-", 1, 2), (3, 4)])
        j.append([("-", 5, 6)])
    seg = os.path.join(d, _segments(d)[0])
    with open(seg, "r+b") as fh:
        fh.truncate(os.path.getsize(seg) - 4)  # tear the tail record
    with UpdateJournal(d, sync="off") as j:
        (rec,) = j.replay()
        assert rec.ops == (("-", 1, 2), ("+", 3, 4))
        assert j.recovery["truncated_bytes"] > 0


def test_unknown_op_token_rejected_before_append(tmp_path):
    with UpdateJournal(str(tmp_path / "wal"), sync="off") as j:
        with pytest.raises(JournalError):
            j.append([("~", 1, 2)])
        assert j.last_lsn == 0
