"""JournaledPrimary: ack ⇒ durable, recovery, dedupe, housekeeping.

The "crash" here is in-process: drop the store and the journal handles
without checkpointing — exactly the state kill -9 leaves on disk (the
process-level drill lives in tests/cluster/test_primary_process.py).
"""

import os
import random

import pytest

from repro.cluster.chaos import _bfs_answers
from repro.durability import JournaledPrimary, StaleSequenceError
from repro.durability.primary import EPOCHS_DIR_NAME, JOURNAL_DIR_NAME
from repro.graph.digraph import DiGraph
from repro.graph.generators import novel_acyclic_edges, sparse_dag
from repro.server.service import QueryService


def _crash(p):
    """Simulate kill -9: no checkpoint, no manifest commit, no pruning."""
    p.live.store.close()
    p._journal.close()
    p._closed = True


def _answers(p, pairs):
    svc = QueryService(primary=p, workers=0).start()
    try:
        return [bool(a) for a in svc.query_pairs(pairs)]
    finally:
        svc.close()


@pytest.fixture()
def setup(tmp_path):
    g = sparse_dag(90, seed=4)
    edges, _ = novel_acyclic_edges(g, 9, seed=4)
    rng = random.Random(5)
    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(200)]
    return str(tmp_path / "data"), g, edges, pairs


def _truth(g, extra, pairs):
    full = DiGraph.from_edges(g.n, list(g.edges()) + list(extra))
    return _bfs_answers(full, pairs)


def test_ack_implies_durable_without_checkpoint(setup):
    d, g, edges, pairs = setup
    p = JournaledPrimary(d, g, sync="always", checkpoint_every=0)
    for i, e in enumerate(edges[:3]):
        summary = p.apply_update([e], client="t", seq=i + 1)
        assert summary["lsn"] == i + 1
    _crash(p)

    p2 = JournaledPrimary(d)
    try:
        info = p2.recovery_info
        assert info["recovered"] is True
        assert info["records_replayed"] == 3
        assert info["records_in_artifact"] == 0
        assert _answers(p2, pairs) == _truth(g, edges[:3], pairs)
    finally:
        p2.close()


def test_all_or_nothing_on_invalid_stream(setup):
    d, g, edges, pairs = setup
    p = JournaledPrimary(d, g, sync="off")
    before = _answers(p, pairs)
    with pytest.raises(ValueError):
        p.apply_update([edges[0], (0, 10**9)])  # second edge out of range
    # nothing journaled, nothing applied — the whole stream vanished
    assert p.journal.last_lsn == 0
    assert _answers(p, pairs) == before
    _crash(p)
    p2 = JournaledPrimary(d)
    try:
        assert _answers(p2, pairs) == before
        assert p2.recovery_info["records_replayed"] == 0
    finally:
        p2.close()


def test_dedupe_survives_crash_and_recovery(setup):
    d, g, edges, pairs = setup
    p = JournaledPrimary(d, g, sync="off", checkpoint_every=0)
    first = p.apply_update([edges[0]], client="cli", seq=1)
    assert first["deduped"] is False
    _crash(p)

    p2 = JournaledPrimary(d)
    try:
        # the replayed journal record rebuilt the window entry
        again = p2.apply_update([edges[0]], client="cli", seq=1)
        assert again["deduped"] is True
        assert again["lsn"] == first["lsn"]
        # and the edge applied exactly once
        assert _answers(p2, pairs) == _truth(g, edges[:1], pairs)
        with pytest.raises(StaleSequenceError):
            p2.apply_update([edges[1]], client="cli", seq=0)
    finally:
        p2.close()


def test_checkpoint_compacts_journal_and_prunes_artifacts(setup):
    d, g, edges, pairs = setup
    p = JournaledPrimary(
        d, g, sync="off", checkpoint_every=1, segment_bytes=1024
    )
    try:
        for i, e in enumerate(edges):
            p.apply_update([e], client="t", seq=i + 1)
        epoch_files = os.listdir(os.path.join(d, EPOCHS_DIR_NAME))
        assert len(epoch_files) <= 2  # current + draining predecessor
        segs = os.listdir(os.path.join(d, JOURNAL_DIR_NAME))
        # per-update checkpoints keep the journal near-empty: every
        # full segment at or below the watermark is gone
        assert len(segs) <= 2
    finally:
        p.close()


def test_recovery_prefers_disk_over_given_graph(setup):
    d, g, edges, pairs = setup
    p = JournaledPrimary(d, g, sync="off")
    p.apply_update([edges[0]])
    p.close()
    # a different graph argument must be ignored: the data dir wins
    other = sparse_dag(10, seed=99)
    p2 = JournaledPrimary(d, other)
    try:
        assert p2.recovery_info["recovered"] is True
        assert _answers(p2, pairs) == _truth(g, edges[:1], pairs)
    finally:
        p2.close()


def test_clean_close_then_reopen_replays_nothing(setup):
    d, g, edges, pairs = setup
    p = JournaledPrimary(d, g, sync="interval")
    for i, e in enumerate(edges[:4]):
        p.apply_update([e], client="t", seq=i + 1)
    p.close()
    p2 = JournaledPrimary(d)
    try:
        info = p2.recovery_info
        assert info["recovered"] is True
        assert info["records_replayed"] == 0  # close() checkpointed
        assert _answers(p2, pairs) == _truth(g, edges[:4], pairs)
    finally:
        p2.close()


# ----------------------------------------------------------------------
# Churn: removals through the WAL, across crashes and checkpoints
# ----------------------------------------------------------------------
def _live_truth(g, ops, pairs):
    full = g.copy()
    for op, u, v in ops:
        if op == "-":
            full.remove_edge(u, v)
        else:
            full.add_edge(u, v)
    return _bfs_answers(full, pairs)


def test_churn_acks_survive_crash(setup):
    d, g, edges, pairs = setup
    victims = [next(iter(g.edges()))]
    ops = [("+", *edges[0]), ("-", *victims[0]), ("+", *edges[1])]
    p = JournaledPrimary(d, g, sync="always", checkpoint_every=0)
    summary = p.apply_update(ops, client="t", seq=1)
    assert summary["removals"] == 1 and summary["inserts"] == 2
    want = _live_truth(g, ops, pairs)
    assert _answers(p, pairs) == want
    _crash(p)

    p2 = JournaledPrimary(d)
    try:
        assert p2.recovery_info["records_replayed"] == 1
        assert _answers(p2, pairs) == want
        # the retry of the acked batch dedupes instead of re-applying
        again = p2.apply_update(ops, client="t", seq=1)
        assert again["deduped"] is True
        assert _answers(p2, pairs) == want
    finally:
        p2.close()


def test_churn_folds_below_watermark_after_checkpoint(setup):
    d, g, edges, pairs = setup
    victims = list(g.edges())[:2]
    ops = [("-", *victims[0]), ("+", *edges[0]), ("-", *victims[1])]
    p = JournaledPrimary(d, g, sync="always")  # checkpoint_every=1
    p.apply_update(ops)
    want = _live_truth(g, ops, pairs)
    p.close()

    # close() checkpointed: recovery folds the removals into the base
    # graph instead of replaying them.
    p2 = JournaledPrimary(d)
    try:
        assert p2.recovery_info["records_replayed"] == 0
        assert _answers(p2, pairs) == want
    finally:
        p2.close()


def test_recovery_survives_segment_compaction(setup):
    """Checkpoint compaction deletes below-watermark segments; the base
    snapshot must have absorbed their ops first or recovery rebuilds a
    graph missing them (and the first post-recovery publish serves it)."""
    d, g, edges, pairs = setup
    victims = list(g.edges())[:3]
    p = JournaledPrimary(d, g, sync="always", segment_bytes=1024)
    ops = []
    for i, e in enumerate(edges[:6]):
        # pad each batch past the segment size so every update rotates
        # (duplicate inserts are idempotent and journal like any op)
        op = [("+", *e)] * 140
        if i < len(victims):
            op.append(("-", *victims[i]))
        p.apply_update(op)  # checkpoint_every=1: compacts as it rotates
        ops.extend(op)
    segs = sorted(os.listdir(os.path.join(d, JOURNAL_DIR_NAME)))
    assert segs and "00000001" not in segs[0]  # first segment compacted away
    want = _live_truth(g, ops, pairs)
    assert _answers(p, pairs) == want
    _crash(p)

    p2 = JournaledPrimary(d)
    try:
        assert _answers(p2, pairs) == want
        # ... including after the next publish, which is compiled from
        # the recovered graph rather than served from the old artifact
        extra = edges[6]
        p2.apply_update([extra])
        assert _answers(p2, pairs) == _live_truth(g, ops + [("+", *extra)], pairs)
    finally:
        p2.close()
