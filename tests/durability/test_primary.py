"""JournaledPrimary: ack ⇒ durable, recovery, dedupe, housekeeping.

The "crash" here is in-process: drop the store and the journal handles
without checkpointing — exactly the state kill -9 leaves on disk (the
process-level drill lives in tests/cluster/test_primary_process.py).
"""

import os
import random

import pytest

from repro.cluster.chaos import _bfs_answers
from repro.durability import JournaledPrimary, StaleSequenceError
from repro.durability.primary import EPOCHS_DIR_NAME, JOURNAL_DIR_NAME
from repro.graph.digraph import DiGraph
from repro.graph.generators import novel_acyclic_edges, sparse_dag
from repro.server.service import QueryService


def _crash(p):
    """Simulate kill -9: no checkpoint, no manifest commit, no pruning."""
    p.live.store.close()
    p._journal.close()
    p._closed = True


def _answers(p, pairs):
    svc = QueryService(primary=p, workers=0).start()
    try:
        return [bool(a) for a in svc.query_pairs(pairs)]
    finally:
        svc.close()


@pytest.fixture()
def setup(tmp_path):
    g = sparse_dag(90, seed=4)
    edges, _ = novel_acyclic_edges(g, 9, seed=4)
    rng = random.Random(5)
    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(200)]
    return str(tmp_path / "data"), g, edges, pairs


def _truth(g, extra, pairs):
    full = DiGraph.from_edges(g.n, list(g.edges()) + list(extra))
    return _bfs_answers(full, pairs)


def test_ack_implies_durable_without_checkpoint(setup):
    d, g, edges, pairs = setup
    p = JournaledPrimary(d, g, sync="always", checkpoint_every=0)
    for i, e in enumerate(edges[:3]):
        summary = p.apply_update([e], client="t", seq=i + 1)
        assert summary["lsn"] == i + 1
    _crash(p)

    p2 = JournaledPrimary(d)
    try:
        info = p2.recovery_info
        assert info["recovered"] is True
        assert info["records_replayed"] == 3
        assert info["records_in_artifact"] == 0
        assert _answers(p2, pairs) == _truth(g, edges[:3], pairs)
    finally:
        p2.close()


def test_all_or_nothing_on_invalid_stream(setup):
    d, g, edges, pairs = setup
    p = JournaledPrimary(d, g, sync="off")
    before = _answers(p, pairs)
    with pytest.raises(ValueError):
        p.apply_update([edges[0], (0, 10**9)])  # second edge out of range
    # nothing journaled, nothing applied — the whole stream vanished
    assert p.journal.last_lsn == 0
    assert _answers(p, pairs) == before
    _crash(p)
    p2 = JournaledPrimary(d)
    try:
        assert _answers(p2, pairs) == before
        assert p2.recovery_info["records_replayed"] == 0
    finally:
        p2.close()


def test_dedupe_survives_crash_and_recovery(setup):
    d, g, edges, pairs = setup
    p = JournaledPrimary(d, g, sync="off", checkpoint_every=0)
    first = p.apply_update([edges[0]], client="cli", seq=1)
    assert first["deduped"] is False
    _crash(p)

    p2 = JournaledPrimary(d)
    try:
        # the replayed journal record rebuilt the window entry
        again = p2.apply_update([edges[0]], client="cli", seq=1)
        assert again["deduped"] is True
        assert again["lsn"] == first["lsn"]
        # and the edge applied exactly once
        assert _answers(p2, pairs) == _truth(g, edges[:1], pairs)
        with pytest.raises(StaleSequenceError):
            p2.apply_update([edges[1]], client="cli", seq=0)
    finally:
        p2.close()


def test_checkpoint_compacts_journal_and_prunes_artifacts(setup):
    d, g, edges, pairs = setup
    p = JournaledPrimary(
        d, g, sync="off", checkpoint_every=1, segment_bytes=1024
    )
    try:
        for i, e in enumerate(edges):
            p.apply_update([e], client="t", seq=i + 1)
        epoch_files = os.listdir(os.path.join(d, EPOCHS_DIR_NAME))
        assert len(epoch_files) <= 2  # current + draining predecessor
        segs = os.listdir(os.path.join(d, JOURNAL_DIR_NAME))
        # per-update checkpoints keep the journal near-empty: every
        # full segment at or below the watermark is gone
        assert len(segs) <= 2
    finally:
        p.close()


def test_recovery_prefers_disk_over_given_graph(setup):
    d, g, edges, pairs = setup
    p = JournaledPrimary(d, g, sync="off")
    p.apply_update([edges[0]])
    p.close()
    # a different graph argument must be ignored: the data dir wins
    other = sparse_dag(10, seed=99)
    p2 = JournaledPrimary(d, other)
    try:
        assert p2.recovery_info["recovered"] is True
        assert _answers(p2, pairs) == _truth(g, edges[:1], pairs)
    finally:
        p2.close()


def test_clean_close_then_reopen_replays_nothing(setup):
    d, g, edges, pairs = setup
    p = JournaledPrimary(d, g, sync="interval")
    for i, e in enumerate(edges[:4]):
        p.apply_update([e], client="t", seq=i + 1)
    p.close()
    p2 = JournaledPrimary(d)
    try:
        info = p2.recovery_info
        assert info["recovered"] is True
        assert info["records_replayed"] == 0  # close() checkpointed
        assert _answers(p2, pairs) == _truth(g, edges[:4], pairs)
    finally:
        p2.close()
