"""DedupeWindow: the (client, seq) idempotency contract."""

import pytest

from repro.durability import DedupeWindow, StaleSequenceError


def test_fresh_duplicate_and_stale():
    w = DedupeWindow()
    assert w.check("a", 1) is None
    w.record("a", 1, {"lsn": 9})
    assert w.check("a", 1) == {"lsn": 9}
    assert w.check("a", 2) is None  # next seq is fresh
    w.record("a", 2, {"lsn": 10})
    with pytest.raises(StaleSequenceError):
        w.check("a", 1)  # going backwards is a protocol violation


def test_lru_cap_evicts_oldest_client():
    w = DedupeWindow(max_clients=2)
    w.record("a", 1, {})
    w.record("b", 1, {})
    w.record("c", 1, {})
    assert len(w) == 2
    assert w.check("a", 1) is None  # evicted: unknown again


def test_snapshot_roundtrip():
    w = DedupeWindow()
    w.record("a", 3, {"lsn": 1})
    w.record("b", 7, {"lsn": 2, "deduped": False})
    w2 = DedupeWindow.from_snapshot(w.snapshot())
    assert w2.check("b", 7) == {"lsn": 2, "deduped": False}
    with pytest.raises(StaleSequenceError):
        w2.check("a", 2)
