"""EpochManifest: atomic commit, load, corruption refusal."""

import json
import os

import pytest

from repro.durability import EpochManifest
from repro.durability.manifest import MANIFEST_NAME


def test_missing_manifest_loads_none(tmp_path):
    m = EpochManifest(str(tmp_path))
    assert not m.exists()
    assert m.load() is None


def test_commit_load_roundtrip(tmp_path):
    m = EpochManifest(str(tmp_path))
    m.commit({"epoch": 3, "watermark": 17, "artifact": "epoch-000003.rpro"})
    doc = m.load()
    assert doc["epoch"] == 3 and doc["watermark"] == 17
    assert doc["format"] == 1
    # commit is replace, not append: a re-commit fully supersedes
    m.commit({"epoch": 4, "watermark": 20, "artifact": "epoch-000004.rpro"})
    assert m.load()["epoch"] == 4
    # no stray temp file survives the protocol
    assert os.listdir(str(tmp_path)) == [MANIFEST_NAME]


def test_corrupt_manifest_raises_not_fresh(tmp_path):
    """A mangled manifest must be a loud error: silently starting fresh
    would betray every acked update in the data dir."""
    m = EpochManifest(str(tmp_path))
    m.commit({"epoch": 1, "watermark": 0, "artifact": "a.rpro"})
    with open(m.path, "r+b") as fh:
        fh.seek(0)
        fh.write(b"\x00garbage")
    with pytest.raises(RuntimeError):
        m.load()


def test_wrong_format_version_raises(tmp_path):
    m = EpochManifest(str(tmp_path))
    with open(m.path, "w", encoding="utf-8") as fh:
        json.dump({"format": 99, "epoch": 1}, fh)
    with pytest.raises(RuntimeError):
        m.load()
