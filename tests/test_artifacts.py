"""Tests for the v2 binary artifact lifecycle (compile → save → load).

Covers: file round-trips for every registered method (bit-identical
answers, scalar and engine batch paths), the facade pipeline artifact
(SCC semantics preserved), v1-JSON → v2-binary migration against the
committed fixtures, format validation, and the serialization
satellites (``save_labels`` facade rejection, ``FrozenOracle`` parity).
"""

import json
import random
from pathlib import Path

import pytest

from repro.artifact import read_artifact_header, write_artifact
from repro.baselines.tflabel import TFLabel
from repro.core.base import method_registry
from repro.core.distribution import DistributionLabeling
from repro.core.hierarchical import HierarchicalLabeling
from repro.facade import Reachability
from repro.graph.generators import citation_dag, powerlaw_digraph, random_dag
from repro.kernels import have_numpy
from repro.serialization import (
    FrozenOracle,
    load_artifact,
    load_labels,
    save_artifact,
    save_labels,
)

FIXTURES = Path(__file__).parent / "fixtures"

METHODS = sorted(method_registry())


def seeded_workload(n, count, seed=13):
    rng = random.Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


@pytest.mark.parametrize("method", METHODS)
class TestMethodRoundTrip:
    def test_file_round_trip_bit_identical(self, method, tmp_path):
        g = random_dag(70, 180, seed=21)
        idx = method_registry()[method](g)
        path = tmp_path / "oracle.rpro"
        nbytes = save_artifact(idx, path)
        assert nbytes == path.stat().st_size
        loaded = load_artifact(path)
        pairs = [(u, v) for u in range(g.n) for v in range(g.n)]
        want = [idx.query(u, v) for u, v in pairs]
        assert loaded.query_batch(pairs) == want
        assert loaded.short_name == idx.short_name

    def test_copy_mode_matches_mmap(self, method, tmp_path):
        g = random_dag(40, 90, seed=22)
        idx = method_registry()[method](g)
        path = tmp_path / "oracle.rpro"
        save_artifact(idx, path)
        mapped = load_artifact(path, mmap=True)
        copied = load_artifact(path, mmap=False)
        pairs = seeded_workload(g.n, 600)
        assert mapped.query_batch(pairs) == copied.query_batch(pairs)


class TestLiveCompiledThroughFile:
    def test_compiled_oracle_saves_directly(self, tmp_path):
        g = random_dag(50, 120, seed=23)
        compiled = DistributionLabeling(g).compile()
        path = tmp_path / "dl.rpro"
        save_artifact(compiled, path)
        loaded = load_artifact(path)
        pairs = seeded_workload(g.n, 1000)
        assert loaded.query_batch(pairs) == compiled.query_batch(pairs)

    def test_engine_batch_path_matches_scalar(self, tmp_path):
        if not have_numpy():
            pytest.skip("engine path requires numpy")
        # Big enough that loaded batches ride the vectorized engine
        # (>= MIN_BATCH pairs) over the mmapped arena + baked-in
        # height/interval certificates.
        g = citation_dag(1500, out_per_vertex=3, seed=29)
        idx = DistributionLabeling(g)
        path = tmp_path / "dl.rpro"
        save_artifact(idx, path)
        loaded = load_artifact(path)
        pairs = seeded_workload(g.n, 6000, seed=31)
        got = loaded.query_batch(pairs)
        assert got == idx.query_batch(pairs)
        assert got == [loaded.query(u, v) for u, v in pairs]
        assert loaded._batch_engine.height is not None
        assert loaded._batch_engine.rounds

    def test_rejects_unsupported_objects(self, tmp_path):
        with pytest.raises(TypeError, match="save_artifact"):
            save_artifact(object(), tmp_path / "x.rpro")


class TestFacadePipeline:
    def test_round_trip_preserves_scc_semantics(self, tmp_path):
        g = powerlaw_digraph(400, 1200, seed=33)  # cyclic input
        r = Reachability(g, "DL")
        path = tmp_path / "pipe.rpro"
        r.save(path)
        served = Reachability.load(path)
        assert served.original is None
        pairs = seeded_workload(g.n, 3000, seed=35)
        assert served.query_batch(pairs) == r.query_batch(pairs)
        for u, v in pairs[:400]:
            assert served.query(u, v) == r.query(u, v)
            assert served.same_scc(u, v) == r.same_scc(u, v)
        # Same-SCC pairs answer True both ways round.
        comp = r.condensation.comp
        by_comp = {}
        for v, c in enumerate(comp):
            by_comp.setdefault(c, []).append(v)
        scc = next((vs for vs in by_comp.values() if len(vs) > 1), None)
        if scc is not None:
            assert served.query(scc[0], scc[1]) and served.query(scc[1], scc[0])

    def test_reachable_count_and_stats(self, tmp_path):
        g = powerlaw_digraph(150, 420, seed=37)
        r = Reachability(g, "GL")
        path = tmp_path / "pipe.rpro"
        r.save(path)
        served = Reachability.load(path)
        for v in range(0, g.n, 17):
            assert served.reachable_count_from(v) == r.reachable_count_from(v)
        stats = served.stats()
        assert stats["serve_mode"] is True
        assert stats["original_n"] == g.n
        assert stats["index"]["method"] == "GL"

    def test_path_requires_build_mode(self, tmp_path):
        g = random_dag(30, 60, seed=39)
        r = Reachability(g)
        r.save(tmp_path / "p.rpro")
        served = Reachability.load(tmp_path / "p.rpro")
        with pytest.raises(RuntimeError, match="serve-mode"):
            served.path(0, 1)

    def test_from_artifact_rejects_method_artifacts(self, tmp_path):
        g = random_dag(30, 60, seed=41)
        save_artifact(DistributionLabeling(g), tmp_path / "m.rpro")
        with pytest.raises(ValueError, match="pipeline"):
            Reachability.from_artifact(tmp_path / "m.rpro")

    def test_serve_mode_resave_rejected(self, tmp_path):
        g = random_dag(30, 60, seed=43)
        Reachability(g).save(tmp_path / "p.rpro")
        served = Reachability.load(tmp_path / "p.rpro")
        with pytest.raises(TypeError, match="serve-mode"):
            served.save(tmp_path / "q.rpro")


V1_FIXTURES = {
    # method -> (class, (n, m, seed)) — must match the committed files.
    "DL": (DistributionLabeling, (40, 100, 101)),
    "HL": (HierarchicalLabeling, (45, 110, 102)),
    "TF": (TFLabel, (38, 95, 103)),
}


@pytest.mark.parametrize("method", sorted(V1_FIXTURES))
class TestV1Migration:
    """v1 JSON fixtures → recompile → v2 binary, answers bit-identical."""

    def test_fixture_migrates_bit_identically(self, method, tmp_path):
        cls, (n, m, seed) = V1_FIXTURES[method]
        fixture = FIXTURES / f"v1_{method.lower()}_labels.json"
        frozen = load_labels(fixture)
        assert frozen.method == method
        # Recompile the v1 oracle into a v2 binary artifact.
        path = tmp_path / "migrated.rpro"
        save_artifact(frozen, path)
        migrated = load_artifact(path)
        # Fresh build of the same seeded graph = ground truth.
        fresh = cls(random_dag(n, m, seed=seed))
        pairs = [(u, v) for u in range(n) for v in range(n)]
        want = [fresh.query(u, v) for u, v in pairs]
        assert frozen.query_batch(pairs) == want
        assert migrated.query_batch(pairs) == want
        workload = seeded_workload(n, 5000, seed=47)
        assert migrated.query_batch(workload) == fresh.query_batch(workload)

    def test_migrated_size_parity(self, method, tmp_path):
        cls, (n, m, seed) = V1_FIXTURES[method]
        frozen = load_labels(FIXTURES / f"v1_{method.lower()}_labels.json")
        path = tmp_path / "migrated.rpro"
        save_artifact(frozen, path)
        migrated = load_artifact(path)
        fresh = cls(random_dag(n, m, seed=seed))
        assert migrated.index_size_ints() == fresh.index_size_ints()
        assert frozen.index_size_ints() == fresh.index_size_ints()


class TestFormatValidation:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.rpro"
        path.write_bytes(b"definitely not an artifact")
        with pytest.raises(ValueError, match="magic"):
            load_artifact(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "v.rpro"
        write_artifact(path, "labels", {"n": 0}, {})
        raw = bytearray(path.read_bytes())
        patched = raw.replace(b'"format_version":2', b'"format_version":9')
        path.write_bytes(patched)
        with pytest.raises(ValueError, match="version"):
            load_artifact(path)

    def test_header_peek(self, tmp_path):
        g = random_dag(20, 40, seed=51)
        save_artifact(DistributionLabeling(g), tmp_path / "a.rpro")
        doc = read_artifact_header(tmp_path / "a.rpro")
        assert doc["kind"] == "labels"
        assert doc["meta"]["method"] == "DL"
        assert "out_hops" in doc["sections"]

    def test_unknown_section_raises_keyerror(self, tmp_path):
        g = random_dag(20, 40, seed=53)
        save_artifact(DistributionLabeling(g), tmp_path / "a.rpro")
        from repro.artifact import read_artifact

        art = read_artifact(tmp_path / "a.rpro")
        with pytest.raises(KeyError, match="no section"):
            art.section("nope")


class TestSerializationSatellites:
    def test_save_labels_rejects_facade_by_name(self, tmp_path):
        g = random_dag(25, 50, seed=55)
        r = Reachability(g)
        with pytest.raises(TypeError, match=r"Reachability\.save"):
            save_labels(r, tmp_path / "x.json")

    def test_frozen_oracle_stats_parity(self, tmp_path):
        g = random_dag(40, 100, seed=57)
        dl = DistributionLabeling(g)
        save_labels(dl, tmp_path / "labels.json")
        frozen = load_labels(tmp_path / "labels.json")
        assert isinstance(frozen, FrozenOracle)
        stats = frozen.stats()
        live = dl.stats()
        assert stats["index_size_ints"] == live["index_size_ints"]
        assert stats["max_label_len"] == live["max_label_len"]
        assert stats["avg_label_len"] == live["avg_label_len"]
        assert stats["method"] == "DL"
        assert frozen.index_size_ints() == dl.index_size_ints()

    def test_frozen_oracle_is_its_own_compiled_form(self, tmp_path):
        g = random_dag(30, 70, seed=59)
        save_labels(DistributionLabeling(g), tmp_path / "labels.json")
        frozen = load_labels(tmp_path / "labels.json")
        assert frozen.compile() is frozen


class TestCompactProfile:
    """The deflated profile: smaller file, bit-identical answers."""

    def test_round_trip_parity_and_size(self, tmp_path):
        g = random_dag(900, 2800, seed=77)
        idx = DistributionLabeling(g)
        mmap_path = tmp_path / "m.rpro"
        compact_path = tmp_path / "c.rpro"
        save_artifact(idx, mmap_path)
        save_artifact(idx, compact_path, profile="compact")
        assert compact_path.stat().st_size < mmap_path.stat().st_size
        a = load_artifact(mmap_path)
        b = load_artifact(compact_path)
        pairs = seeded_workload(g.n, 6000, seed=79)
        want = idx.query_batch(pairs)
        assert a.query_batch(pairs) == want
        assert b.query_batch(pairs) == want
        # Compact drops the interval certificates, keeps the height one.
        assert b.rounds == [] and a.rounds
        assert b.height is not None

    @pytest.mark.parametrize("method", ["GL", "PT*", "2HOP"])
    def test_compact_covers_other_kinds(self, method, tmp_path):
        g = random_dag(60, 150, seed=81)
        idx = method_registry()[method](g)
        path = tmp_path / "c.rpro"
        save_artifact(idx, path, profile="compact")
        loaded = load_artifact(path)
        pairs = [(u, v) for u in range(g.n) for v in range(g.n)]
        assert loaded.query_batch(pairs) == [idx.query(u, v) for u, v in pairs]

    def test_compact_pipeline(self, tmp_path):
        g = powerlaw_digraph(250, 700, seed=83)
        r = Reachability(g, "DL")
        r.save(tmp_path / "p.rpro", profile="compact")
        served = Reachability.load(tmp_path / "p.rpro")
        pairs = seeded_workload(g.n, 2000, seed=85)
        assert served.query_batch(pairs) == r.query_batch(pairs)

    def test_unknown_profile_rejected(self, tmp_path):
        g = random_dag(20, 40, seed=87)
        with pytest.raises(ValueError, match="profile"):
            save_artifact(DistributionLabeling(g), tmp_path / "x.rpro",
                          profile="gzip")


class TestWitnessTranslation:
    """Compiled DL witnesses must name original vertices, like the live
    oracle — rank ids are indistinguishable from vertex ids, so the
    artifact carries a hop -> vertex map (mmap profile) or refuses."""

    def test_dl_witness_matches_live_through_file(self, tmp_path):
        g = random_dag(300, 900, seed=1)
        idx = DistributionLabeling(g)
        save_artifact(idx, tmp_path / "dl.rpro")
        loaded = load_artifact(tmp_path / "dl.rpro")
        checked = 0
        for u, v in seeded_workload(g.n, 4000, seed=89):
            live = idx.witness(u, v)
            assert loaded.witness(u, v) == live
            checked += live is not None
        assert checked > 0

    def test_hl_witness_unchanged(self, tmp_path):
        g = random_dag(80, 220, seed=2)
        idx = HierarchicalLabeling(g)
        save_artifact(idx, tmp_path / "hl.rpro")
        loaded = load_artifact(tmp_path / "hl.rpro")
        for u, v in seeded_workload(g.n, 1500, seed=91):
            assert loaded.witness(u, v) == idx.witness(u, v)

    def test_compact_dl_witness_raises_instead_of_lying(self, tmp_path):
        g = random_dag(120, 350, seed=3)
        idx = DistributionLabeling(g)
        save_artifact(idx, tmp_path / "dl.rpro", profile="compact")
        loaded = load_artifact(tmp_path / "dl.rpro")
        u, v = next(
            (u, v) for u, v in seeded_workload(g.n, 5000, seed=93)
            if idx.query(u, v) and u != v
        )
        with pytest.raises(RuntimeError, match="hop"):
            loaded.witness(u, v)

    def test_v1_frozen_dl_witness_raises(self, tmp_path):
        g = random_dag(60, 150, seed=4)
        idx = DistributionLabeling(g)
        save_labels(idx, tmp_path / "l.json")
        frozen = load_labels(tmp_path / "l.json")
        u, v = next(
            (u, v) for u, v in seeded_workload(g.n, 5000, seed=95)
            if idx.query(u, v) and u != v
        )
        with pytest.raises(RuntimeError, match="hop"):
            frozen.witness(u, v)
