"""Tests for the CLI (run in-process with tiny workloads)."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "figure4" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "agrocyc" in out and "cit-Patents" in out

    def test_tiny_table2_subset(self, capsys):
        rc = main([
            "table2", "--datasets", "kegg", "--queries", "40", "--repeats", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kegg" in out
        assert "DL" in out

    def test_figure3_subset(self, capsys):
        rc = main(["figure3", "--datasets", "reactome", "--repeats", "1"])
        assert rc == 0
        assert "reactome" in capsys.readouterr().out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["table2", "--datasets", "nope"])

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["table99"])

    def test_stats_subset(self, capsys):
        assert main(["stats", "--datasets", "kegg,reactome"]) == 0
        out = capsys.readouterr().out
        assert "kegg" in out and "reactome" in out
        assert "avgTC" in out

    def test_verify_subset(self, capsys):
        assert main(["verify", "--datasets", "kegg", "--queries", "60"]) == 0
        out = capsys.readouterr().out
        assert "kegg/DL: ok" in out
        assert "FAIL" not in out

    def test_export_subset(self, capsys, tmp_path):
        out = str(tmp_path / "ds")
        assert main(["export", "--datasets", "reactome", "--out", out]) == 0
        from repro.graph.io import read_edge_list
        from repro.datasets.catalog import load

        g = read_edge_list(tmp_path / "ds" / "reactome.txt")
        assert g == load("reactome")

    def test_ablation_rank_subset(self, capsys):
        assert main(["ablation-rank", "--datasets", "kegg"]) == 0
        out = capsys.readouterr().out
        assert "degree_product" in out

    def test_ablation_labelstore_subset(self, capsys):
        assert main([
            "ablation-labelstore", "--datasets", "kegg", "--queries", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "hybrid" in out


class TestArtifactSubcommands:
    """build/query talk through binary artifacts (build → serve split)."""

    def test_build_then_query(self, capsys, tmp_path):
        art = str(tmp_path / "kegg.rpro")
        assert main(["build", "--dataset", "kegg", "--method", "DL", "--out", art]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "bytes" in out

        assert main(["query", "--artifact", art, "--random", "500", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "500 queries" in out
        assert "first query" in out

    def test_query_pairs_file(self, capsys, tmp_path):
        art = str(tmp_path / "kegg.rpro")
        assert main(["build", "--dataset", "kegg", "--out", art]) == 0
        capsys.readouterr()
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("0 1\n5 9\n3 3\n")
        assert main(["query", "--artifact", art, "--pairs", str(pairs)]) == 0
        out = capsys.readouterr().out
        assert "3 queries" in out

    def test_build_from_edge_list(self, capsys, tmp_path):
        from repro.datasets.catalog import load
        from repro.graph.io import write_edge_list

        edges = str(tmp_path / "g.txt")
        write_edge_list(load("reactome"), edges)
        art = str(tmp_path / "g.rpro")
        assert main(["build", "--edges", edges, "--method", "GL", "--out", art]) == 0
        capsys.readouterr()
        assert main(["query", "--artifact", art, "--random", "200", "--no-mmap"]) == 0
        assert "200 queries" in capsys.readouterr().out

    def test_build_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["build", "--dataset", "nope", "--out", str(tmp_path / "x.rpro")])

    def test_query_answers_match_live_pipeline(self, capsys, tmp_path):
        import random as _random

        from repro.datasets.catalog import load
        from repro.facade import Reachability

        art = str(tmp_path / "kegg.rpro")
        assert main(["build", "--dataset", "kegg", "--out", art]) == 0
        capsys.readouterr()
        assert main(["query", "--artifact", art, "--random", "400", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        g = load("kegg")
        r = Reachability(g)
        rng = _random.Random(7)
        pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(400)]
        positives = sum(r.query_batch(pairs))
        assert f"({positives:,} reachable)" in out


class TestQueryStdin:
    def test_pairs_dash_reads_stdin(self, capsys, tmp_path, monkeypatch):
        import io

        art = str(tmp_path / "kegg.rpro")
        assert main(["build", "--dataset", "kegg", "--out", art]) == 0
        capsys.readouterr()
        monkeypatch.setattr("sys.stdin", io.StringIO("0 1\n5 9\n\n3 3\n"))
        assert main(["query", "--artifact", art, "--pairs", "-"]) == 0
        out = capsys.readouterr().out
        assert "3 queries" in out


class TestServeSubcommand:
    def test_serve_until_remote_shutdown(self, tmp_path):
        import threading

        from repro.server import ReachClient
        from repro.serialization import load_artifact

        art = str(tmp_path / "kegg.rpro")
        assert main(["build", "--dataset", "kegg", "--out", art]) == 0
        ready = tmp_path / "ready"
        rc = []
        thread = threading.Thread(
            target=lambda: rc.append(
                main([
                    "serve", "--artifact", art, "--port", "0",
                    "--batch-window", "0.5", "--cache-size", "1024",
                    "--ready-file", str(ready),
                ])
            ),
            daemon=True,
        )
        thread.start()
        for _ in range(200):
            if ready.exists() and ready.read_text().strip():
                break
            import time

            time.sleep(0.05)
        host, port = ready.read_text().split()[:2]

        import random

        direct = load_artifact(art)
        n = direct.stats()["original_n"]
        rng = random.Random(9)
        pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(200)]
        expected = [bool(a) for a in direct.query_batch(pairs)]
        with ReachClient(host, int(port)) as client:
            assert client.query_batch(pairs) == expected
            client.shutdown_server()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert rc == [0]

    def test_serve_requires_artifact(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_http_shutdown_stops_whole_server(self, tmp_path):
        import json
        import threading
        import time
        import urllib.request

        art = str(tmp_path / "kegg.rpro")
        assert main(["build", "--dataset", "kegg", "--out", art]) == 0
        ready = tmp_path / "ready"
        rc = []
        thread = threading.Thread(
            target=lambda: rc.append(
                main([
                    "serve", "--artifact", art, "--port", "0",
                    "--http-port", "0", "--ready-file", str(ready),
                ])
            ),
            daemon=True,
        )
        thread.start()
        for _ in range(200):
            if ready.exists() and len(ready.read_text().split()) == 3:
                break
            time.sleep(0.05)
        host, _port, http_port = ready.read_text().split()
        req = urllib.request.Request(
            f"http://{host}:{http_port}/shutdown", data=b"", method="POST"
        )
        doc = json.loads(urllib.request.urlopen(req).read())
        assert doc["shutting_down"] is True
        thread.join(timeout=15)
        assert not thread.is_alive() and rc == [0]
