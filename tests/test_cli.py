"""Tests for the CLI (run in-process with tiny workloads)."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "figure4" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "agrocyc" in out and "cit-Patents" in out

    def test_tiny_table2_subset(self, capsys):
        rc = main([
            "table2", "--datasets", "kegg", "--queries", "40", "--repeats", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kegg" in out
        assert "DL" in out

    def test_figure3_subset(self, capsys):
        rc = main(["figure3", "--datasets", "reactome", "--repeats", "1"])
        assert rc == 0
        assert "reactome" in capsys.readouterr().out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["table2", "--datasets", "nope"])

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["table99"])

    def test_stats_subset(self, capsys):
        assert main(["stats", "--datasets", "kegg,reactome"]) == 0
        out = capsys.readouterr().out
        assert "kegg" in out and "reactome" in out
        assert "avgTC" in out

    def test_verify_subset(self, capsys):
        assert main(["verify", "--datasets", "kegg", "--queries", "60"]) == 0
        out = capsys.readouterr().out
        assert "kegg/DL: ok" in out
        assert "FAIL" not in out

    def test_export_subset(self, capsys, tmp_path):
        out = str(tmp_path / "ds")
        assert main(["export", "--datasets", "reactome", "--out", out]) == 0
        from repro.graph.io import read_edge_list
        from repro.datasets.catalog import load

        g = read_edge_list(tmp_path / "ds" / "reactome.txt")
        assert g == load("reactome")

    def test_ablation_rank_subset(self, capsys):
        assert main(["ablation-rank", "--datasets", "kegg"]) == 0
        out = capsys.readouterr().out
        assert "degree_product" in out

    def test_ablation_labelstore_subset(self, capsys):
        assert main([
            "ablation-labelstore", "--datasets", "kegg", "--queries", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "hybrid" in out
