"""Integration tests across modules: catalog datasets through the full
pipeline (generation → condensation → indexing → workloads → queries).

These run on the real benchmark stand-ins (thousands of vertices), with
sampled verification against online BFS — the scale tier between the
exhaustive unit tests and the benchmarks.
"""

import pytest

from repro.baselines.online import OnlineBFS
from repro.core.base import get_method
from repro.datasets.catalog import load
from repro.datasets.workloads import equal_workload, random_workload

from .conftest import sample_pairs

SMALL_DATASETS = ["kegg", "agrocyc", "xmark", "arxiv"]
FAST_METHODS = ["DL", "HL", "TF", "PT", "INT", "PW8", "GL", "PL", "CH", "GL*", "TREE", "DUAL", "3HOP"]


@pytest.mark.parametrize("dataset", SMALL_DATASETS)
@pytest.mark.parametrize("method", FAST_METHODS)
def test_method_on_catalog_dataset_sampled(dataset, method):
    graph = load(dataset)
    index = get_method(method)(graph)
    truth = OnlineBFS(graph)
    pairs = sample_pairs(graph, 300, seed=13)
    assert index.query_batch(pairs) == truth.query_batch(pairs)


@pytest.mark.parametrize("dataset", ["citeseer", "uniprotenc_22m", "wiki"])
def test_oracles_agree_on_large_standins(dataset):
    graph = load(dataset)
    dl = get_method("DL")(graph)
    hl = get_method("HL")(graph)
    pairs = sample_pairs(graph, 400, seed=17)
    answers_dl = dl.query_batch(pairs)
    assert answers_dl == hl.query_batch(pairs)
    truth = OnlineBFS(graph)
    spot = pairs[:80]
    assert answers_dl[:80] == truth.query_batch(spot)


@pytest.mark.parametrize("dataset", ["kegg", "arxiv"])
def test_workloads_consistent_across_methods(dataset):
    graph = load(dataset)
    wl_equal = equal_workload(graph, 300, seed=3)
    wl_random = random_workload(graph, 300, seed=4)
    counts = set()
    for method in ("DL", "HL", "INT", "PW8"):
        index = get_method(method)(graph)
        counts.add(
            (index.count_reachable(wl_equal.pairs), index.count_reachable(wl_random.pairs))
        )
    assert len(counts) == 1
    equal_count = next(iter(counts))[0]
    assert equal_count == wl_equal.positives


def test_full_pipeline_facade_on_cyclic_standin():
    """Regenerate a cyclic raw graph, run it through the facade, verify."""
    from repro.graph.generators import powerlaw_digraph
    from repro.graph.traversal import bfs_reaches
    from repro import Reachability

    raw = powerlaw_digraph(2000, 5200, seed=21)
    oracle = Reachability(raw, method="DL")
    import random

    rng = random.Random(9)
    for _ in range(400):
        u = rng.randrange(raw.n)
        v = rng.randrange(raw.n)
        assert oracle.query(u, v) == bfs_reaches(raw.out_adj, u, v)


def test_serialized_oracle_serves_catalog_dataset(tmp_path):
    from repro.core.distribution import DistributionLabeling
    from repro.serialization import load_labels, save_labels

    graph = load("kegg")
    dl = DistributionLabeling(graph)
    path = tmp_path / "kegg.json"
    save_labels(dl, path)
    frozen = load_labels(path)
    pairs = sample_pairs(graph, 500, seed=23)
    assert frozen.query(pairs[0][0], pairs[0][1]) == dl.query(*pairs[0])
    assert [frozen.query(u, v) for u, v in pairs] == dl.query_batch(pairs)
