"""Test package marker enabling relative imports of tests.conftest."""
