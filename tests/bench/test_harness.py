"""Tests for the benchmark harness."""

import pytest

from repro.bench.harness import (
    BuildBudget,
    MethodRun,
    RunResult,
    prepare_workloads,
    render_table,
    run_dataset,
)
from repro.graph.generators import random_dag


@pytest.fixture
def small_graph():
    return random_dag(60, 150, seed=1)


class TestMethodRun:
    def test_ok_run_records_everything(self, small_graph):
        wl = prepare_workloads(small_graph, ["equal"], 50)
        r = MethodRun("DL").execute("test", small_graph, wl)
        assert r.ok
        assert r.build_s is not None and r.build_s >= 0
        assert r.index_size_ints > 0
        assert "equal" in r.query_ms

    def test_memory_budget_produces_dnf(self, small_graph):
        budget = BuildBudget(params={"max_cover_closure_bits": 4})
        r = MethodRun("KR", budget).execute("test", small_graph, [])
        assert r.status == "dnf-memory"
        assert not r.ok

    def test_time_budget_produces_dnf(self, small_graph):
        budget = BuildBudget(time_s=0.0)
        r = MethodRun("DL", budget).execute("test", small_graph, [])
        assert r.status == "dnf-time"

    def test_generic_exception_reports_error_status(self, small_graph):
        budget = BuildBudget(params={"order": "no_such_order"})
        r = MethodRun("DL", budget).execute("test", small_graph, [])
        assert r.status == "error"
        assert "no_such_order" in r.error

    def test_positive_rate_recorded(self, small_graph):
        wl = prepare_workloads(small_graph, ["equal"], 60)
        r = MethodRun("DL").execute("test", small_graph, wl)
        assert 0.0 < r.correct_positive_rate < 1.0


class TestRunDataset:
    def test_runs_all_methods(self, small_graph):
        results = run_dataset(
            "x", ["DL", "HL", "GL"], queries=40, graph=small_graph
        )
        assert [r.method for r in results] == ["DL", "HL", "GL"]
        assert all(r.ok for r in results)

    def test_methods_answer_identically(self, small_graph):
        # All ok methods must report the same positive rate on the
        # shared workload — a cheap cross-validation inside the harness.
        results = run_dataset(
            "x", ["DL", "HL", "INT", "PW8"], queries=80, graph=small_graph
        )
        rates = {r.correct_positive_rate for r in results if r.ok}
        assert len(rates) == 1


class TestWorkloadPreparation:
    def test_kinds(self, small_graph):
        wls = prepare_workloads(small_graph, ["equal", "random"], 30)
        assert [w.name for w in wls] == ["equal", "random"]

    def test_unknown_kind(self, small_graph):
        with pytest.raises(ValueError):
            prepare_workloads(small_graph, ["weird"], 10)


class TestRendering:
    def _results(self):
        return [
            RunResult("d1", "DL", "ok", build_s=0.5, index_size_ints=1234,
                      query_ms={"equal": 1.25}),
            RunResult("d1", "KR", "dnf-memory"),
            RunResult("d2", "DL", "ok", build_s=0.1, index_size_ints=99,
                      query_ms={"equal": 0.4}),
        ]

    def test_query_table(self):
        text = render_table(self._results(), "query", title="T")
        assert "1.2" in text or "1.3" in text
        assert "—" in text
        assert "d1" in text and "d2" in text

    def test_construction_table(self):
        text = render_table(self._results(), "construction")
        assert "500" in text  # 0.5 s -> 500 ms

    def test_index_size_table(self):
        text = render_table(self._results(), "index_size")
        assert "1.2" in text  # 1234 ints -> 1.2 k

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            render_table(self._results(), "nope")

    def test_dnf_cell_for_missing_combination(self):
        text = render_table(self._results(), "query")
        # d2 has no KR run: its cell renders as DNF dash.
        lines = [ln for ln in text.splitlines() if ln.startswith("d2")]
        assert "—" in lines[0]


class TestThroughArtifact:
    """The harness can measure the serve lifecycle (artifact round-trip)."""

    def test_queries_served_from_loaded_artifact(self):
        g = random_dag(60, 150, seed=9)
        live = run_dataset(
            "adhoc", ["DL"], queries=300, query_repeats=1, graph=g
        )[0]
        served = run_dataset(
            "adhoc", ["DL"], queries=300, query_repeats=1, graph=g,
            through_artifact=True,
        )[0]
        assert served.status == "ok"
        assert served.artifact_bytes > 0
        assert served.load_s >= 0.0
        # Loaded-artifact size must match the live index's accounting.
        assert served.loaded_size_ints == live.index_size_ints
        assert served.index_size_ints == live.index_size_ints
        # Same workload seed -> same positive count either way.
        assert served.correct_positive_rate == live.correct_positive_rate

    def test_live_runs_have_no_artifact_fields(self):
        g = random_dag(40, 90, seed=11)
        r = run_dataset("adhoc", ["GL"], queries=100, query_repeats=1, graph=g)[0]
        assert r.artifact_bytes is None and r.load_s is None


class TestQueryPercentiles:
    """Every query mode reports p50/p95/p99, not just batch means."""

    def test_direct_mode_reports_scalar_percentiles(self, small_graph):
        wl = prepare_workloads(small_graph, ["equal", "random"], 50)
        r = MethodRun("DL").execute("test", small_graph, wl)
        assert set(r.query_percentiles) == {"equal", "random"}
        for pct in r.query_percentiles.values():
            assert set(pct) == {"p50_us", "p95_us", "p99_us", "p99.9_us"}
            assert 0 < pct["p50_us"] <= pct["p95_us"] <= pct["p99_us"]

    def test_through_artifact_mode_reports_percentiles(self, small_graph):
        wl = prepare_workloads(small_graph, ["equal"], 40)
        r = MethodRun("DL", through_artifact=True).execute(
            "test", small_graph, wl
        )
        assert r.ok
        assert "p95_us" in r.query_percentiles["equal"]

    def test_empty_workload_has_no_percentiles(self, small_graph):
        from repro.datasets.workloads import Workload

        r = MethodRun("DL").execute("test", small_graph, [Workload("equal", [])])
        assert r.query_ms["equal"] == 0.0
        assert "equal" not in r.query_percentiles


class TestThroughServer:
    def test_through_server_reports_qps_and_latency(self, small_graph):
        wl = prepare_workloads(small_graph, ["equal"], 60)
        direct = MethodRun("DL").execute("test", small_graph, wl)
        r = MethodRun("DL", through_server=True).execute(
            "test", small_graph, wl
        )
        assert r.ok, r.error
        assert r.server_qps["equal"] > 0
        assert r.query_ms["equal"] > 0
        pct = r.query_percentiles["equal"]
        assert 0 < pct["p50_us"] <= pct["p99_us"]
        # answers served over TCP match the direct run bit for bit
        assert r.correct_positive_rate == direct.correct_positive_rate

    def test_through_server_with_worker_processes(self, small_graph):
        wl = prepare_workloads(small_graph, ["equal"], 60)
        direct = MethodRun("DL").execute("test", small_graph, wl)
        r = MethodRun(
            "DL", through_server=True, server_workers=1
        ).execute("test", small_graph, wl)
        assert r.ok, r.error
        assert r.correct_positive_rate == direct.correct_positive_rate

    def test_run_dataset_through_server(self, small_graph):
        results = run_dataset(
            "x",
            ["DL"],
            queries=40,
            graph=small_graph,
            through_server=True,
        )
        assert results[0].ok
        assert results[0].server_qps["equal"] > 0
