"""Tests for experiment specs."""

import pytest

from repro.bench.experiments import EXPERIMENTS, PAPER_METHODS, get_experiment
from repro.core.base import method_registry
from repro.datasets.catalog import DATASETS


class TestSpecs:
    def test_every_paper_artifact_has_a_spec(self):
        for exp_id in ("table1", "table2", "table3", "table4", "table5",
                       "table6", "table7", "figure3", "figure4"):
            assert exp_id in EXPERIMENTS

    def test_paper_method_columns_match_paper_order(self):
        assert PAPER_METHODS == [
            "GL", "GL*", "PT", "PT*", "KR", "PW8", "INT", "2HOP",
            "PL", "TF", "HL", "DL",
        ]

    def test_all_methods_resolvable(self):
        registry = method_registry()
        for m in PAPER_METHODS:
            assert m in registry

    def test_all_datasets_resolvable(self):
        for exp in EXPERIMENTS.values():
            for d in exp.datasets:
                assert d in DATASETS

    def test_small_tables_use_small_suite(self):
        exp = get_experiment("table2")
        assert all(DATASETS[d].suite == "small" for d in exp.datasets)

    def test_large_tables_use_large_suite(self):
        exp = get_experiment("table5")
        assert all(DATASETS[d].suite == "large" for d in exp.datasets)

    def test_workload_kinds(self):
        assert get_experiment("table2").workloads == ["equal"]
        assert get_experiment("table3").workloads == ["random"]

    def test_metrics(self):
        assert get_experiment("table4").metric == "construction"
        assert get_experiment("figure3").metric == "index_size"

    def test_large_budgets_constrain_known_failures(self):
        exp = get_experiment("table5")
        assert "KR" in exp.budgets
        assert "2HOP" in exp.budgets
        assert "PT" in exp.budgets

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("table99")


class TestSmokeRun:
    def test_tiny_end_to_end_run(self):
        """Run a miniature Table-2 cell set end to end."""
        from repro.bench.harness import run_dataset

        results = run_dataset(
            "kegg", ["DL", "HL", "GL"], workload_kinds=["equal"], queries=40,
        )
        assert all(r.ok for r in results)
        rates = {r.correct_positive_rate for r in results}
        assert len(rates) == 1  # all methods agree on the workload
