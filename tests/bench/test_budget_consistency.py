"""Budget specs must stay consistent with method signatures.

A budget whose parameter name drifts away from the method's keyword
would silently stop producing DNFs (TypeError would surface as an
"error" row instead of the intended "—"); this test pins the contract.
"""

import inspect

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.core.base import get_method


def _build_params(method_name):
    factory = get_method(method_name)
    build = getattr(factory, "_build", None)
    if build is None:  # plain factory function (GL*, PT*)
        return set(inspect.signature(factory).parameters) - {"graph"}
    return set(inspect.signature(build).parameters) - {"self", "graph", "params"}


@pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
def test_budget_params_match_method_signatures(exp_id):
    exp = EXPERIMENTS[exp_id]
    for method, budget in exp.budgets.items():
        accepted = _build_params(method)
        for param in budget.params:
            assert param in accepted, (
                f"{exp_id}: budget for {method} names unknown param {param!r}; "
                f"accepted: {sorted(accepted)}"
            )


def test_budgets_actually_trip_where_intended():
    """Spot-check the two signature DNF patterns of the reproduction."""
    from repro.datasets.catalog import load

    table2 = EXPERIMENTS["table2"]
    with pytest.raises(MemoryError):
        get_method("KR")(load("arxiv"), **table2.budgets["KR"].params)

    table5 = EXPERIMENTS["table5"]
    with pytest.raises(MemoryError):
        get_method("PT")(load("wiki"), **table5.budgets["PT"].params)
    # ... while the paper-completing cells still pass.
    get_method("PT")(load("mapped_100K"), **table5.budgets["PT"].params)
    get_method("KR")(load("human"), **table2.budgets["KR"].params)
