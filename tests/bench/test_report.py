"""Tests for the Markdown report generator."""

import pytest

from repro.bench.harness import RunResult
from repro.bench.report import completion_pattern, markdown_table, speedup_summary


def _results():
    return [
        RunResult("d1", "DL", "ok", build_s=0.10, index_size_ints=1000,
                  query_ms={"equal": 2.0}),
        RunResult("d1", "2HOP", "ok", build_s=2.00, index_size_ints=900,
                  query_ms={"equal": 3.0}),
        RunResult("d1", "KR", "dnf-memory"),
        RunResult("d2", "DL", "ok", build_s=0.20, index_size_ints=5000,
                  query_ms={"equal": 4.0}),
        RunResult("d2", "2HOP", "dnf-memory"),
        RunResult("d2", "KR", "dnf-memory"),
    ]


class TestMarkdownTable:
    def test_structure(self):
        md = markdown_table(_results(), "query")
        lines = md.splitlines()
        assert lines[0] == "| Dataset | DL | 2HOP | KR |"
        assert lines[1].count("---") == 4
        assert "| d1 | 2.0 | 3.0 | — |" in md
        assert "| d2 | 4.0 | — | — |" in md

    def test_construction_metric(self):
        md = markdown_table(_results(), "construction")
        assert "100.0" in md and "2000.0" in md

    def test_index_size_metric(self):
        md = markdown_table(_results(), "index_size")
        assert "1.0" in md and "5.0" in md

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            markdown_table(_results(), "nope")


class TestCompletionPattern:
    def test_pattern(self):
        assert completion_pattern(_results(), "2HOP") == {"d1": True, "d2": False}
        assert completion_pattern(_results(), "KR") == {"d1": False, "d2": False}


class TestSpeedup:
    def test_construction_speedup(self):
        # Only d1 has both: 2.0s / 0.1s = 20x.
        s = speedup_summary(_results(), baseline="2HOP", target="DL")
        assert s == pytest.approx(20.0)

    def test_query_speedup(self):
        s = speedup_summary(_results(), baseline="2HOP", target="DL", metric="query")
        assert s == pytest.approx(1.5)

    def test_none_when_no_overlap(self):
        assert speedup_summary(_results(), baseline="KR", target="DL") is None
