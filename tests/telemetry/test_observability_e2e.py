"""End-to-end observability: wire tracing, HTTP scrape paths, stats v2.

Servers here force ``Telemetry(sample_every=1, latency_every=1)`` —
production defaults sample 1-in-256 / 1-in-32, which on a short test
workload records nothing deterministic.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.facade import Reachability
from repro.graph.generators import random_dag
from repro.server.client import ReachClient
from repro.server.service import HttpFrontend, QueryService, ReachServer
from repro.telemetry import Telemetry

from tests.telemetry.test_metrics import _parse_prometheus


def _sample_all() -> Telemetry:
    return Telemetry(sample_every=1, latency_every=1)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    graph = random_dag(120, 320, seed=3)
    reach = Reachability(graph, "DL")
    path = str(tmp_path_factory.mktemp("obs") / "obs.rpro")
    reach.save(path)
    pairs = [(i % 120, (i * 7 + 3) % 120) for i in range(200)]
    expected = [bool(a) for a in reach.query_batch(pairs)]
    return path, pairs, expected


@pytest.fixture()
def traced_server(artifact):
    path, _, _ = artifact
    # cache_size=0 keeps every traced request on the full batcher →
    # dispatch path instead of answering from the LRU.
    service = QueryService(
        path, workers=0, telemetry=_sample_all(), cache_size=0
    ).start()
    server = ReachServer(service, owns_service=True).start()
    yield server
    server.close()


class TestWireTracing:
    def test_traced_query_exemplar_has_named_spans(self, traced_server, artifact):
        _, pairs, expected = artifact
        with ReachClient(*traced_server.address) as client:
            answers, trace_id = client.query_batch_traced(pairs)
            assert answers == expected
            # The trace is offered *after* the reply flush (the flush
            # span has to be timed first), so give the server thread a
            # beat to land it in the sampler.
            deadline = time.monotonic() + 5.0
            ours = []
            while not ours and time.monotonic() < deadline:
                traces = client.traces()
                ours = [t for t in traces if t["trace_id"] == trace_id]
                if not ours:
                    time.sleep(0.01)
        assert ours, f"trace {trace_id} not retained among {len(traces)}"
        doc = ours[0]
        assert doc["origin"] == "client"
        assert doc["duration_ns"] >= 0
        names = [s["name"] for s in doc["spans"]]
        # the acceptance bar is >= 4 named pipeline stages
        assert {"decode", "cache_lookup", "batch_wait", "dispatch"} <= set(
            names
        ), names
        for span in doc["spans"]:
            assert span["offset_ns"] >= 0
            assert span["duration_ns"] >= 0

    def test_server_autotraces_without_client_ids(self, traced_server, artifact):
        _, pairs, expected = artifact
        with ReachClient(*traced_server.address) as client:
            assert client.query_batch(pairs) == expected
            traces = client.traces()
        assert any(t["origin"] == "server" for t in traces)

    def test_stats_v2_reports_sampled_histograms(self, traced_server, artifact):
        _, pairs, _ = artifact
        with ReachClient(*traced_server.address) as client:
            client.query_batch(pairs)
            doc = client.stats()
        assert doc["stats_version"] == 2
        tel = doc["telemetry"]
        hist = tel["histograms"]["repro_request_seconds"]
        assert hist["count"] >= 1
        assert hist["unit"] == "ns"
        assert tel["traces"]["keep"] > 0

    def test_traced_query_works_with_telemetry_off(self, artifact):
        path, pairs, expected = artifact
        service = QueryService(path, workers=0, telemetry=False).start()
        server = ReachServer(service, owns_service=True).start()
        try:
            with ReachClient(*server.address) as client:
                answers, _ = client.query_batch_traced(pairs)
                assert answers == expected
                assert client.traces() == []
                assert "telemetry" not in client.stats()
        finally:
            server.close()


class _BoomStats:
    """Delegates everything to the real oracle except ``stats``."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def stats(self):
        raise RuntimeError("stats backend gone")


class TestStatsDegradation:
    def test_broken_subsection_is_named_not_swallowed(self, artifact):
        path, pairs, expected = artifact
        service = QueryService(path, workers=0, telemetry=_sample_all()).start()
        try:
            service._oracle = _BoomStats(service._oracle)
            assert service.query_pairs(pairs) == expected  # serving survives
            doc = service.stats()
            assert doc["degraded"] == ["oracle"]
            assert "oracle" not in doc
            errors = doc["telemetry"]["counters"]["repro_stats_errors_total"]
            assert errors >= 1
        finally:
            service.close()


@pytest.fixture()
def http_server(artifact):
    path, _, _ = artifact
    service = QueryService(path, workers=0, telemetry=_sample_all()).start()
    http = HttpFrontend(service).start()
    yield service, http
    http.close()
    service.close()


def _get(http, route):
    url = f"http://{http.host}:{http.port}{route}"
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers, resp.read()


class TestHttpScrape:
    def test_get_stats_is_v2_json(self, http_server):
        _, http = http_server
        status, headers, body = _get(http, "/stats")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        doc = json.loads(body)
        assert doc["stats_version"] == 2
        assert "telemetry" in doc

    def test_get_metrics_is_prometheus_text(self, http_server):
        service, http = http_server
        # put traffic through the service so histograms have content
        service.query_pairs([(0, 1), (2, 3)])
        status, headers, body = _get(http, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == "text/plain; version=0.0.4"
        samples = _parse_prometheus(body.decode("utf-8"))
        buckets = samples["repro_request_seconds_bucket"]
        assert buckets[-1][0].endswith('le="+Inf"}')
        assert buckets[-1][1] >= 1
        assert samples["repro_stats_requests"][0][1] >= 1

    def test_get_traces_returns_exemplars(self, http_server):
        service, http = http_server
        service.query_pairs([(0, 1)])
        status, _, body = _get(http, "/traces")
        assert status == 200
        doc = json.loads(body)
        assert isinstance(doc["traces"], list)
        assert doc["traces"], "forced sampling should retain an exemplar"
        assert doc["traces"][0]["spans"]

    def test_unknown_route_is_404(self, http_server):
        _, http = http_server
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(http, "/nope")
        assert err.value.code == 404

    def test_malformed_query_is_400(self, http_server):
        _, http = http_server
        url = f"http://{http.host}:{http.port}/query"
        req = urllib.request.Request(
            url, data=b"this is not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400
