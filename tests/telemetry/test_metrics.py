"""Unit tests for the telemetry core: instruments, registry, renderer.

The merge property test at the bottom is the satellite-2 contract:
percentiles computed from ``merge_histograms(snap(A), snap(B))`` must
agree with exact nearest-rank percentiles over ``A + B`` to within one
log2 bucket width, for arbitrary observation sets.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import histogram_percentiles, merge_histograms, percentiles
from repro.telemetry import (
    HIST_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Telemetry,
    render_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42
        assert c.snapshot() == 42


class TestGauge:
    def test_push_gauge(self):
        g = Gauge("x")
        g.set(3.5)
        assert g.value == 3.5

    def test_pull_gauge_samples_lazily(self):
        box = [0]
        g = Gauge("x", fn=lambda: box[0])
        box[0] = 7
        assert g.value == 7

    def test_broken_pull_gauge_yields_none_not_raise(self):
        def boom():
            raise RuntimeError("gauge source gone")

        g = Gauge("x", fn=boom)
        assert g.value is None
        assert g.snapshot() is None


class TestHistogram:
    def test_bucket_semantics(self):
        h = Histogram("x")
        h.observe_ns(0)      # bucket 0: exactly zero
        h.observe_ns(1)      # bucket 1: [1, 2)
        h.observe_ns(2)      # bucket 2: [2, 4)
        h.observe_ns(3)      # bucket 2
        h.observe_ns(1024)   # bucket 11: [1024, 2048)
        snap = h.snapshot()
        assert snap["buckets"] == {"0": 1, "1": 1, "2": 2, "11": 1}
        assert snap["count"] == 5
        assert snap["sum"] == 0 + 1 + 2 + 3 + 1024

    def test_negative_clamps_to_zero(self):
        h = Histogram("x")
        h.observe_ns(-5)
        assert h.snapshot()["buckets"] == {"0": 1}

    def test_weighted_observation(self):
        h = Histogram("x")
        h.observe_ns(3, weight=8)
        snap = h.snapshot()
        assert snap["buckets"] == {"2": 8}
        assert snap["count"] == 8
        assert snap["sum"] == 24

    def test_observe_seconds(self):
        h = Histogram("x")
        h.observe_s(1.0)  # 1e9 ns -> bucket 30 ([2^29, 2^30))
        (idx,) = (int(k) for k in h.snapshot()["buckets"])
        assert 1 << (idx - 1) <= 10**9 < 1 << idx

    def test_huge_value_clamps_to_last_bucket(self):
        h = Histogram("x")
        h.observe_ns(1 << 200)
        assert h.snapshot()["buckets"] == {str(HIST_BUCKETS - 1): 1}

    def test_timer_context_manager(self):
        h = Histogram("x")
        with h.time():
            pass
        assert h.count == 1

    def test_snapshot_survives_json_roundtrip(self):
        h = Histogram("x")
        h.observe_ns(100)
        snap = json.loads(json.dumps(h.snapshot()))
        assert snap == h.snapshot()


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h") is r.histogram("h")

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")

    def test_snapshot_sections(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(1.5)
        r.histogram("h").observe_ns(10)
        snap = r.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_broken_gauge_absent_from_snapshot(self):
        r = MetricsRegistry()

        def boom():
            raise ValueError

        r.gauge("bad", fn=boom)
        assert "bad" not in r.snapshot()["gauges"]


def _parse_prometheus(text):
    """Minimal text-exposition v0.0.4 grammar check; returns samples."""
    samples = {}
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            assert parts[0] == "#" and parts[1] in ("HELP", "TYPE"), line
            continue
        name_part, _, value = line.rpartition(" ")
        assert name_part, f"sample line missing value: {line!r}"
        float(value)  # must parse
        name = name_part.split("{", 1)[0]
        assert name[0].isalpha() or name[0] in "_:", line
        assert all(ch.isalnum() or ch in "_:" for ch in name), line
        samples.setdefault(name, []).append((name_part, float(value)))
    return samples


class TestRenderPrometheus:
    def test_counter_gauge_histogram_render(self):
        r = MetricsRegistry()
        r.counter("repro_requests_total").inc(3)
        r.gauge("repro_epoch").set(4)
        h = r.histogram("repro_request_seconds")
        h.observe_ns(1000)
        h.observe_ns(3000)
        text = render_prometheus(r)
        samples = _parse_prometheus(text)
        assert samples["repro_requests_total"][0][1] == 3
        assert samples["repro_epoch"][0][1] == 4
        # histogram renders cumulative le-buckets in SECONDS plus
        # +Inf, _sum, _count
        buckets = samples["repro_request_seconds_bucket"]
        assert buckets[-1][0].endswith('le="+Inf"}')
        assert buckets[-1][1] == 2
        cum = [v for _, v in buckets]
        assert cum == sorted(cum)
        assert samples["repro_request_seconds_count"][0][1] == 2
        assert samples["repro_request_seconds_sum"][0][1] == pytest.approx(
            4000 / 1e9
        )

    def test_stats_doc_flattens_to_gauges(self):
        text = render_prometheus(
            None, {"cache": {"hits": 10, "rate": 0.5}, "name": "skipme"}
        )
        samples = _parse_prometheus(text)
        assert samples["repro_stats_cache_hits"][0][1] == 10
        assert samples["repro_stats_cache_rate"][0][1] == 0.5
        assert not any("skipme" in k for k in samples)

    def test_hostile_keys_sanitized(self):
        text = render_prometheus(None, {"a b-c!": 1, "0lead": 2})
        _parse_prometheus(text)  # grammar must hold regardless of input


class TestTelemetryBundle:
    def test_rates_round_to_powers_of_two(self):
        t = Telemetry(sample_every=100, latency_every=5)
        assert t.sample_every == 128
        assert t.latency_every == 8

    def test_sample_rate_never_below_latency_rate(self):
        t = Telemetry(sample_every=2, latency_every=32)
        assert t.sample_every == 32

    def test_should_sample_fires_once_per_period(self):
        t = Telemetry(sample_every=4, latency_every=1)
        fired = sum(t.should_sample() for _ in range(64))
        assert fired == 16

    def test_snapshot_includes_traces_section(self):
        t = Telemetry()
        snap = t.snapshot()
        assert "traces" in snap
        assert "histograms" in snap


# -- satellite 2: merge(A, B) vs percentiles(A + B) --------------------

observations = st.lists(
    st.integers(min_value=0, max_value=1 << 40), min_size=0, max_size=200
)


@given(a=observations, b=observations)
@settings(max_examples=200, deadline=None)
def test_merged_histogram_percentiles_match_exact_within_one_bucket(a, b):
    ha, hb = Histogram("a"), Histogram("b")
    for v in a:
        ha.observe_ns(v)
    for v in b:
        hb.observe_ns(v)
    merged = merge_histograms(ha.snapshot(), hb.snapshot())
    assert merged["count"] == len(a) + len(b)
    assert merged["sum"] == sum(a) + sum(b)

    exact = percentiles(a + b)
    approx = histogram_percentiles(merged)
    assert set(exact) == set(approx)
    for key, true_value in exact.items():
        estimate = approx[key]
        if true_value == 0:
            assert estimate == 0
        else:
            # The estimate is the upper edge of the log2 bucket that
            # holds the true nearest-rank value: never below it, and
            # at most one bucket width (2x) above it — equality when
            # the true value sits exactly on a bucket's lower edge.
            assert true_value <= estimate <= 2 * true_value


@given(a=observations, b=observations, c=observations)
@settings(max_examples=50, deadline=None)
def test_merge_is_associative_and_order_free(a, b, c):
    snaps = []
    for obs in (a, b, c):
        h = Histogram("x")
        for v in obs:
            h.observe_ns(v)
        snaps.append(h.snapshot())
    one_shot = merge_histograms(*snaps)
    nested = merge_histograms(merge_histograms(snaps[2], snaps[0]), snaps[1])
    assert one_shot == nested


def test_merge_rejects_unit_mismatch():
    h_ns = Histogram("a", unit="ns")
    h_raw = Histogram("b", unit="attempts")
    h_ns.observe_ns(1)
    h_raw.observe_ns(1)
    with pytest.raises(ValueError):
        merge_histograms(h_ns.snapshot(), h_raw.snapshot())


def test_merge_of_nothing_is_empty():
    merged = merge_histograms()
    assert merged["count"] == 0
    assert histogram_percentiles(merged) == {}
