"""Unit tests for trace contexts and the tail sampler."""

import threading

from repro.telemetry import TraceContext, TraceTailSampler, new_trace_id


class TestTraceId:
    def test_nonzero_and_unique(self):
        ids = {new_trace_id() for _ in range(10_000)}
        assert len(ids) == 10_000
        assert 0 not in ids
        assert all(0 < i < 1 << 64 for i in ids)


class TestTraceContext:
    def test_spans_and_relative_offsets(self):
        t = TraceContext(7, origin="server")
        t.start_ns = 1000
        t.add_span("decode", 1000, 1400)
        t.add_span("dispatch", 1500, 2500)
        t.finish(3000)
        doc = t.to_doc()
        assert doc["trace_id"] == 7
        assert doc["origin"] == "server"
        assert doc["duration_ns"] == 2000
        assert doc["spans"] == [
            {"name": "decode", "offset_ns": 0, "duration_ns": 400},
            {"name": "dispatch", "offset_ns": 500, "duration_ns": 1000},
        ]

    def test_finish_is_idempotent(self):
        t = TraceContext(1)
        t.start_ns = 0
        assert t.finish(100) == 100
        assert t.finish(999_999) == 100  # first finish wins

    def test_clock_skew_clamps_not_negative(self):
        t = TraceContext(1)
        t.add_span("x", 500, 400)
        t.start_ns = 1000
        t.finish(500)
        doc = t.to_doc()
        assert doc["duration_ns"] == 0
        assert doc["spans"][0]["duration_ns"] == 0


def _finished(duration_ns, trace_id=None):
    t = TraceContext(trace_id or new_trace_id())
    t.start_ns = 0
    t.finish(duration_ns)
    return t


class TestTailSampler:
    def test_keeps_slowest_n(self):
        s = TraceTailSampler(keep=3)
        for d in (10, 50, 20, 90, 30, 70):
            s.offer(_finished(d))
        kept = [doc["duration_ns"] for doc in s.snapshot()]
        assert kept == [90, 70, 50]  # slowest-first

    def test_stats(self):
        s = TraceTailSampler(keep=2)
        for d in (5, 15, 25):
            s.offer(_finished(d))
        st = s.stats()
        assert st == {"kept": 2, "keep": 2, "offered": 3, "slowest_ns": 25}

    def test_snapshot_limit(self):
        s = TraceTailSampler(keep=8)
        for d in range(10, 60, 10):
            s.offer(_finished(d))
        assert len(s.snapshot(limit=2)) == 2

    def test_concurrent_offers_keep_invariant(self):
        s = TraceTailSampler(keep=16)

        def worker(base):
            for d in range(base, base + 500):
                s.offer(_finished(d))

        threads = [threading.Thread(target=worker, args=(i * 500,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        kept = [doc["duration_ns"] for doc in s.snapshot()]
        # the 16 slowest of 2000 offered are 1984..1999
        assert kept == list(range(1999, 1983, -1))
        assert s.stats()["offered"] == 2000
