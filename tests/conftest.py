"""Shared fixtures and helpers for the test suite.

The central helper is :func:`assert_matches_truth`, which compares an
index's answers against the bitset transitive closure on *all* vertex
pairs — the strongest possible correctness check, used by every oracle
and baseline test on small graphs.
"""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.closure import transitive_closure_bits
from repro.graph import generators as gen
from repro.graph.scc import condense


def truth_matrix(graph: DiGraph) -> List[List[bool]]:
    """Reflexive reachability matrix from the bitset closure."""
    tc = transitive_closure_bits(graph)
    n = graph.n
    return [[bool((tc[u] >> v) & 1) for v in range(n)] for u in range(n)]


def assert_matches_truth(index, graph: DiGraph) -> None:
    """Exhaustively compare ``index.query`` with the transitive closure."""
    expected = truth_matrix(graph)
    for u in range(graph.n):
        for v in range(graph.n):
            got = index.query(u, v)
            assert got == expected[u][v], (
                f"{type(index).__name__} wrong at ({u},{v}): "
                f"got {got}, expected {expected[u][v]}"
            )


def sample_pairs(graph: DiGraph, count: int, seed: int = 0):
    """Deterministic random pairs for spot checks on larger graphs."""
    rng = random.Random(seed)
    n = graph.n
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


# ----------------------------------------------------------------------
# Canonical graph fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def diamond() -> DiGraph:
    """0 -> {1, 2} -> 3 (the smallest multi-path DAG)."""
    return DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture
def chain10() -> DiGraph:
    return gen.path_dag(10)


@pytest.fixture
def small_random_dag() -> DiGraph:
    return gen.random_dag(40, 90, seed=11)


@pytest.fixture
def sparse60() -> DiGraph:
    return gen.sparse_dag(60, 0.1, seed=5)


@pytest.fixture
def citation50() -> DiGraph:
    return gen.citation_dag(50, 3, seed=5)


@pytest.fixture
def condensed_powerlaw() -> DiGraph:
    return condense(gen.powerlaw_digraph(80, 220, seed=9)).dag


def family_cases() -> List[DiGraph]:
    """A representative graph per family, small enough for exhaustive checks."""
    return [
        gen.random_dag(30, 70, seed=1),
        gen.random_dag(20, 19, seed=2),
        gen.sparse_dag(45, 0.1, seed=3),
        gen.citation_dag(35, 3, seed=4),
        gen.chain_forest_dag(40, 9, 0.06, seed=5),
        gen.ontology_dag(40, 0.25, seed=6),
        gen.layered_dag(4, 6, 2, seed=7),
        gen.path_dag(18),
        gen.complete_bipartite_dag(4, 5),
        gen.star_dag(12, out=True),
        gen.star_dag(12, out=False),
        condense(gen.powerlaw_digraph(60, 150, seed=8)).dag,
        gen.random_dag(1, 0, seed=0),
        gen.random_dag(2, 1, seed=0),
        gen.random_dag(6, 0, seed=0),  # edgeless
    ]


FAMILY_IDS = [
    "random-dense",
    "random-sparse",
    "sparse-metabolic",
    "citation",
    "chain-forest",
    "ontology",
    "layered",
    "path",
    "bipartite",
    "star-out",
    "star-in",
    "powerlaw-condensed",
    "single-vertex",
    "two-vertices",
    "edgeless",
]
