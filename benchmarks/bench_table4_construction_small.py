"""Table 4 — index construction time, small graphs.

Paper shape criteria: K-Reach and 2HOP slowest; INT and PWAH-8 fastest;
DL ≈ 20× faster than 2HOP and comparable to INT/PWAH-8; HL ≈ 5× faster
than 2HOP.  Construction is timed end to end (the index constructor).
"""

import pytest

from repro.bench.experiments import PAPER_METHODS
from repro.core.base import get_method

from conftest import build_params, graph_for

DATASETS = ["kegg", "agrocyc", "xmark", "arxiv"]


@pytest.mark.parametrize("method", PAPER_METHODS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_construction_small(benchmark, dataset, method):
    graph = graph_for(dataset)
    params = build_params(method, "table4")
    factory = get_method(method)

    def build():
        try:
            return factory(graph, **params)
        except MemoryError:
            pytest.skip(f"{method} on {dataset}: DNF (budget) — '—' in the paper")

    index = benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.extra_info["index_size_ints"] = index.index_size_ints()
