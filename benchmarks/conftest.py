"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_*`` file regenerates one paper artifact (see DESIGN.md §4).
Graphs, workloads and built indices are cached per session so that a
parametrised sweep pays each construction exactly once; methods whose
scaled resource budget trips (the paper's "—" entries) are skipped with
an explanatory message rather than failed.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import get_experiment
from repro.core.base import get_method
from repro.datasets.catalog import load
from repro.datasets.workloads import equal_workload, random_workload

#: Query batch size for benchmark workloads (the paper uses 100k; we use
#: a smaller batch and report per-batch times).
QUERY_BATCH = 1000

_graphs = {}
_workloads = {}
_indices = {}


def graph_for(name: str):
    if name not in _graphs:
        _graphs[name] = load(name)
    return _graphs[name]


def workload_for(name: str, kind: str):
    key = (name, kind)
    if key not in _workloads:
        g = graph_for(name)
        if kind == "equal":
            _workloads[key] = equal_workload(g, QUERY_BATCH, seed=7)
        else:
            _workloads[key] = random_workload(g, QUERY_BATCH, seed=8)
    return _workloads[key]


def index_for(dataset: str, method: str, exp_id: str):
    """Build (once) the index for a (dataset, method) cell of an experiment.

    Returns the index, or skips the test when the method's budget trips —
    mirroring the "—" cells of the paper's tables.
    """
    key = (dataset, method, exp_id)
    if key not in _indices:
        exp = get_experiment(exp_id)
        budget = exp.budgets.get(method)
        params = budget.params if budget else {}
        try:
            _indices[key] = get_method(method)(graph_for(dataset), **params)
        except MemoryError as err:
            _indices[key] = err
    result = _indices[key]
    if isinstance(result, MemoryError):
        pytest.skip(f"{method} on {dataset}: DNF (budget) — paper reports '—' here")
    return result


def build_params(method: str, exp_id: str):
    exp = get_experiment(exp_id)
    budget = exp.budgets.get(method)
    return budget.params if budget else {}
