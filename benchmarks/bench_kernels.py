"""Microbenchmarks for the hot kernels behind the CSR/arena layout.

Standalone script (no pytest-benchmark dependency) so CI can smoke-run
it; emits ``BENCH_kernels.json`` next to this file by default.  The
artifact records, per kernel, the measured winner — these numbers are
what the constants in the library are tuned against:

* ``intersect``: sorted-merge vs gallop vs frozenset probe across length
  skews -> ``repro.core.labels._GALLOP_RATIO`` (the skew ratio where
  galloping starts winning).
* ``bfs``: full BFS sweeps over list-of-lists adjacency vs ``array('l')``
  CSR slices -> documents why the interpreter hot loops consume the
  list view of :class:`repro.graph.csr.CSRView` while C-heavy kernels
  (bigint closure) index the flat arrays.
* ``seal_threshold``: batched-query time as a function of the hybrid
  seal threshold -> ``repro.core.labels._SEAL_SET_MIN``.
* ``query_paths``: per-pair cost of the three sealed query layouts
  (merge / hybrid sets / bigint masks).
* ``dl_cores``: the two construction strategies (bigint prune masks vs
  frozenset snapshots) on a mid-size graph.
* ``engine_vs_masks``: batched queries through the bigint-mask scalar
  loop vs the vectorized engine across sizes -> the PR 2 role split
  (masks serve single queries and small batches; batches above
  ``BatchQueryEngine.MIN_BATCH`` route to the engine).
* ``backend_crossover``: scalar vs numpy construction across sizes ->
  ``repro.kernels.AUTO_MIN_N`` and
  ``repro.core.distribution._NUMPY_AUTO_DENSITY``.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro.core.distribution import _distribute_bits, _distribute_sets
from repro.core.labels import (
    LabelSet,
    gallop_intersect,
    sorted_intersect,
)
from repro.core.order import get_order
from repro.graph.generators import citation_dag, random_dag


#: Repeats per measurement (set to 1 by --smoke).
_REPEATS = 5


def best_of(fn, repeats: int = 0) -> float:
    best = None
    for _ in range(repeats or _REPEATS):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best


# ----------------------------------------------------------------------
def bench_intersect(scale: int):
    """Crossover of merge vs gallop vs set-probe across skew ratios."""
    rng = random.Random(0)
    small_len = 8
    results = []
    for ratio in (1, 2, 4, 8, 16, 32, 64, 128):
        big_len = small_len * ratio
        universe = big_len * 4
        cases = []
        for _ in range(200 * scale):
            small = sorted(rng.sample(range(universe), small_len))
            big = sorted(rng.sample(range(universe), big_len))
            cases.append((small, big, frozenset(big)))

        merge_s = best_of(lambda: [sorted_intersect(s, b) for s, b, _ in cases])
        gallop_s = best_of(lambda: [gallop_intersect(s, b) for s, b, _ in cases])
        probe_s = best_of(lambda: [not fs.isdisjoint(s) for s, _, fs in cases])
        results.append(
            {
                "ratio": ratio,
                "merge_us": merge_s / len(cases) * 1e6,
                "gallop_us": gallop_s / len(cases) * 1e6,
                "set_probe_us": probe_s / len(cases) * 1e6,
            }
        )
    crossover = next(
        (r["ratio"] for r in results if r["gallop_us"] < r["merge_us"]), None
    )
    return {"cases": results, "gallop_beats_merge_at_ratio": crossover}


# ----------------------------------------------------------------------
def bench_bfs(scale: int):
    """Full-graph BFS: list-of-lists vs array('l') CSR slices."""
    g = citation_dag(2000 * scale, out_per_vertex=3, seed=17)
    csr = g.csr()
    out_lists = csr.out_lists()
    offs, tgts = csr.out_offsets, csr.out_targets
    n = g.n

    def bfs_lists():
        vis = bytearray(n)
        total = 0
        for src in range(0, n, 50):
            if vis[src]:
                continue
            frontier = [src]
            vis[src] = 1
            for u in frontier:
                total += 1
                for w in out_lists[u]:
                    if not vis[w]:
                        vis[w] = 1
                        frontier.append(w)
        return total

    def bfs_csr_slices():
        vis = bytearray(n)
        total = 0
        for src in range(0, n, 50):
            if vis[src]:
                continue
            frontier = [src]
            vis[src] = 1
            for u in frontier:
                total += 1
                for w in tgts[offs[u] : offs[u + 1]]:
                    if not vis[w]:
                        vis[w] = 1
                        frontier.append(w)
        return total

    assert bfs_lists() == bfs_csr_slices()
    lists_s = best_of(bfs_lists)
    csr_s = best_of(bfs_csr_slices)
    return {
        "n": n,
        "m": g.m,
        "list_bfs_ms": lists_s * 1e3,
        "csr_slice_bfs_ms": csr_s * 1e3,
        "winner": "list" if lists_s <= csr_s else "csr-slice",
    }


# ----------------------------------------------------------------------
def _dl_labels(graph):
    order = get_order("degree_product")(graph, 0)
    labels = LabelSet(graph.n)
    masks = _distribute_bits(labels, order, graph.out_adj, graph.in_adj)
    return labels, masks


def bench_seal_threshold(scale: int):
    """query_batch time vs the hybrid seal threshold ``set_min``."""
    g = citation_dag(2000 * scale, out_per_vertex=3, seed=17)
    labels, _ = _dl_labels(g)
    rng = random.Random(7)
    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(10000 * scale)]
    sweep = []
    for set_min in (0, 1, 2, 3, 4, 8, 16):
        labels.seal(set_min=set_min)
        batch_s = best_of(lambda: labels.query_batch(pairs))
        mirrors = sum(1 for s in labels.lout_sets if s is not None)
        sweep.append(
            {
                "set_min": set_min,
                "batch_ms": batch_s * 1e3,
                "set_mirrors": mirrors,
            }
        )
    best = min(sweep, key=lambda r: r["batch_ms"])
    return {"sweep": sweep, "best_set_min": best["set_min"]}


# ----------------------------------------------------------------------
def bench_query_paths(scale: int):
    """Per-pair cost of merge vs hybrid-set vs bigint-mask layouts."""
    g = citation_dag(2000 * scale, out_per_vertex=3, seed=17)
    labels, masks = _dl_labels(g)
    rng = random.Random(7)
    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(10000 * scale)]

    merge_s = best_of(lambda: labels.query_batch(pairs))  # unsealed
    labels.seal()
    hybrid_s = best_of(lambda: labels.query_batch(pairs))
    labels.attach_masks(*masks)
    masks_s = best_of(lambda: labels.query_batch(pairs))
    return {
        "pairs": len(pairs),
        "merge_ms": merge_s * 1e3,
        "hybrid_ms": hybrid_s * 1e3,
        "masks_ms": masks_s * 1e3,
    }


# ----------------------------------------------------------------------
def bench_dl_cores(scale: int):
    """Bigint-mask core vs frozenset-snapshot core, identical output."""
    g = random_dag(1500 * scale, 9000 * scale, seed=11)
    order = get_order("degree_product")(g, 0)

    def run_bits():
        labels = LabelSet(g.n)
        _distribute_bits(labels, order, g.out_adj, g.in_adj)
        return labels

    def run_sets():
        labels = LabelSet(g.n)
        _distribute_sets(labels, order, g.out_adj, g.in_adj)
        return labels

    a, b = run_bits(), run_sets()
    assert a.lout == b.lout and a.lin == b.lin
    bits_s = best_of(run_bits)
    sets_s = best_of(run_sets)
    return {
        "n": g.n,
        "m": g.m,
        "bits_core_ms": bits_s * 1e3,
        "sets_core_ms": sets_s * 1e3,
        "winner": "bits" if bits_s <= sets_s else "sets",
    }


# ----------------------------------------------------------------------
def bench_engine_vs_masks(scale: int):
    """Batched queries: bigint-mask scalar loop vs the vectorized engine.

    Drives the PR 2 retune of the mask thresholds in
    ``repro.core.labels``: bigint masks stay the *single-query* and
    small-batch accelerator (one C-level AND beats any vectorized
    dispatch for one pair), while batches above
    ``BatchQueryEngine.MIN_BATCH`` route to the engine, whose lead grows
    with n because the per-pair AND cost is proportional to the mask
    word count (~n/64) and the engine's certificates are O(1) per pair.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy-less smoke runs
        return {"skipped": "numpy unavailable"}
    from repro.core.distribution import DistributionLabeling
    from repro.kernels.batchquery import BatchQueryEngine

    smoke = _REPEATS == 1
    sweep = []
    sizes = (1024, 4096) if smoke else (2048, 4096, 8192, 16384)
    for n in sizes:
        g = citation_dag(n, out_per_vertex=3, seed=17)
        idx = DistributionLabeling(g)
        labels = idx.labels
        if labels._out_masks is None:
            continue
        rng = random.Random(7)
        pairs = [
            (rng.randrange(n), rng.randrange(n))
            for _ in range(2000 if smoke else 20000)
        ]
        arr = np.array(pairs, dtype=np.int64)
        scalar_s = best_of(lambda: labels.query_batch(pairs))
        engine = BatchQueryEngine(np, labels, g)
        assert engine.query_batch(arr) == labels.query_batch(pairs)
        engine_s = best_of(lambda: engine.query_batch(arr))
        sweep.append(
            {
                "n": n,
                "mask_scalar_ms": scalar_s * 1e3,
                "engine_ms": engine_s * 1e3,
                "engine_speedup": round(scalar_s / engine_s, 2),
            }
        )
    return {"sweep": sweep}


# ----------------------------------------------------------------------
def bench_backend_crossover(scale: int):
    """Construction: scalar vs numpy backends across sizes.

    Documents ``repro.kernels.AUTO_MIN_N`` (the "auto" dispatch floor)
    and ``repro.core.distribution._NUMPY_AUTO_DENSITY`` (numpy DL only
    pays on dense graphs, where frontiers are wide).
    """
    from repro.baselines.grail import Grail
    from repro.core.distribution import DistributionLabeling

    out = {}
    sizes = (256, 1024) if _REPEATS == 1 else (256, 1024, 4096)
    for n in sizes:
        g_sparse = citation_dag(n, out_per_vertex=3, seed=17)
        g_dense = random_dag(n, 8 * n, seed=3)
        row = {}
        for tag, g in (("sparse", g_sparse), ("dense", g_dense)):
            py = best_of(lambda: DistributionLabeling(g, backend="python"))
            np_ = best_of(lambda: DistributionLabeling(g, backend="numpy"))
            row[f"dl_{tag}_python_ms"] = py * 1e3
            row[f"dl_{tag}_numpy_ms"] = np_ * 1e3
        py = best_of(lambda: Grail(g_sparse, backend="python"))
        np_ = best_of(lambda: Grail(g_sparse, backend="numpy"))
        row["grail_python_ms"] = py * 1e3
        row["grail_numpy_ms"] = np_ * 1e3
        out[str(n)] = row
    return out


# ----------------------------------------------------------------------
def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "BENCH_kernels.json",
        help="artifact path",
    )
    args = parser.parse_args()
    scale = 1
    if args.smoke:
        global _REPEATS
        _REPEATS = 1

    doc = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": args.smoke,
        "kernels": {},
    }
    for name, fn in (
        ("intersect", bench_intersect),
        ("bfs", bench_bfs),
        ("seal_threshold", bench_seal_threshold),
        ("query_paths", bench_query_paths),
        ("dl_cores", bench_dl_cores),
        ("engine_vs_masks", bench_engine_vs_masks),
        ("backend_crossover", bench_backend_crossover),
    ):
        t0 = time.perf_counter()
        doc["kernels"][name] = fn(scale)
        print(f"{name}: done in {time.perf_counter() - t0:.1f}s")
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
