"""Ablation B — HL backbone locality (ε) and core-size cutoff.

TF-label is HL at ε = 1 (the paper's §2.4 identification); comparing the
two isolates what the ε = 2 backbone buys.  The core-size sweep checks
the paper's practical advice that stopping the decomposition early (a
larger core labeled directly) trades construction time against label
size only mildly.
"""

import pytest

from repro.core.hierarchical import HierarchicalLabeling

from conftest import graph_for

DATASETS = ["agrocyc", "arxiv"]


@pytest.mark.parametrize("eps", [1, 2])
@pytest.mark.parametrize("dataset", DATASETS)
def test_hl_eps_ablation(benchmark, dataset, eps):
    graph = graph_for(dataset)
    index = benchmark.pedantic(
        lambda: HierarchicalLabeling(graph, eps=eps), rounds=2, iterations=1
    )
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["eps"] = eps
    benchmark.extra_info["label_size_ints"] = index.index_size_ints()
    benchmark.extra_info["levels"] = index.hierarchy.level_sizes()


@pytest.mark.parametrize("core_limit", [16, 64, 256])
@pytest.mark.parametrize("dataset", DATASETS)
def test_hl_core_limit_ablation(benchmark, dataset, core_limit):
    graph = graph_for(dataset)
    index = benchmark.pedantic(
        lambda: HierarchicalLabeling(graph, core_limit=core_limit),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["core_limit"] = core_limit
    benchmark.extra_info["label_size_ints"] = index.index_size_ints()
