"""Table 6 — query time, random workload, large graphs."""

import pytest

from repro.bench.experiments import PAPER_METHODS

from conftest import QUERY_BATCH, index_for, workload_for

DATASETS = ["citeseer", "mapped_100K", "wiki"]


@pytest.mark.parametrize("method", PAPER_METHODS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_query_random_large(benchmark, dataset, method):
    index = index_for(dataset, method, "table6")
    pairs = workload_for(dataset, "random").pairs

    answers = benchmark(index.query_batch, pairs)

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.extra_info["batch"] = QUERY_BATCH
    assert len(answers) == len(pairs)
