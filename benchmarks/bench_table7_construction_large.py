"""Table 7 — index construction time, large graphs.

Paper shape criteria: DL is comparable to (or faster than) PWAH-8/INT
and an order of magnitude faster than 2HOP where 2HOP runs at all;
HL completes on nearly all graphs; K-Reach/PT mostly DNF.
"""

import pytest

from repro.bench.experiments import PAPER_METHODS
from repro.core.base import get_method

from conftest import build_params, graph_for

DATASETS = ["citeseer", "uniprotenc_22m", "wiki"]


@pytest.mark.parametrize("method", PAPER_METHODS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_construction_large(benchmark, dataset, method):
    graph = graph_for(dataset)
    params = build_params(method, "table7")
    factory = get_method(method)

    def build():
        try:
            return factory(graph, **params)
        except MemoryError:
            pytest.skip(f"{method} on {dataset}: DNF (budget) — '—' in the paper")

    index = benchmark.pedantic(build, rounds=2, iterations=1)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.extra_info["index_size_ints"] = index.index_size_ints()
