"""Figure 3 — index size (number of stored integers), small graphs.

pytest-benchmark measures time, so the timed body is construction; the
figure's actual metric — ``index_size_ints`` — is attached as extra
info per cell.  Paper shape criteria: PWAH-8/INT smallest; DL smaller
than 2HOP (the headline surprise) and smaller than HL; TF largest of
the oracles.
"""

import pytest

from repro.bench.experiments import PAPER_METHODS
from repro.core.base import get_method

from conftest import build_params, graph_for

DATASETS = ["kegg", "agrocyc", "arxiv"]


@pytest.mark.parametrize("method", PAPER_METHODS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_index_size_small(benchmark, dataset, method):
    graph = graph_for(dataset)
    params = build_params(method, "figure3")
    factory = get_method(method)

    def build():
        try:
            return factory(graph, **params)
        except MemoryError:
            pytest.skip(f"{method} on {dataset}: DNF (budget)")

    index = benchmark.pedantic(build, rounds=2, iterations=1)
    size = index.index_size_ints()
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.extra_info["index_size_ints"] = size
    assert size >= 0
