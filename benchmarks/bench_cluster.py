"""Replica-tier bench: steady-state vs failover latency under chaos.

What the ``repro.cluster`` tier costs and guarantees, measured from the
client side of a real TCP connection against a router fronting N
replica *processes*:

* **steady** — the baseline pass: the same pipelined single-pair
  workload the server bench uses, served through the router (slice
  fan-out over all routable replicas).  The router's overhead relative
  to a single direct server is visible by comparing with
  ``BENCH_server.json``.
* **failover** — the same workload re-run while one replica process is
  SIGKILLed mid-load and later restarted *blank* (so the epoch shipper
  must re-fill it from the primary store before probation re-admits
  it).  Recorded per (family × replicas): steady vs across-failover
  p50/p95/p99, the percentiles of requests whose service interval
  overlapped the kill→restart window, and the router's retry / hedge /
  shed counters for the failover pass — **zero dropped requests is
  asserted, answers are verified bit-identical to the artifact queried
  directly, and the killed replica must be re-admitted** before any
  number is recorded.

The committed ``BENCH_cluster.json`` at the repo root records the
full-size run; ``--smoke`` shrinks everything for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import tempfile
from pathlib import Path

from repro.bench.harness import measure_failover
from repro.facade import Reachability
from repro.graph.generators import citation_dag, random_dag, sparse_dag

FAMILIES = {
    # The acceptance families (same graphs as BENCH_server.json).
    "citation-40000": lambda: citation_dag(40000, out_per_vertex=3, seed=17),
    "random-40000": lambda: random_dag(40000, 120000, seed=11),
    "sparse-30000": lambda: sparse_dag(30000, 0.00005, seed=5),
}

SMOKE_FAMILIES = {
    "citation-1200": lambda: citation_dag(1200, out_per_vertex=3, seed=17),
    "sparse-1500": lambda: sparse_dag(1500, 0.001, seed=5),
}

QUERIES = 30_000
CONNECTIONS = 8
PIPELINE = 128
REPLICA_COUNTS = (2, 3)


def measure_family(
    name: str, make_graph, queries: int, tmpdir: Path, replica_counts
) -> dict:
    import gc

    graph = make_graph()
    row = {"n": graph.n, "m": graph.m}
    artifact = str(tmpdir / f"{name}.rpro")
    reach = Reachability(graph, "DL")
    row["artifact_bytes"] = reach.save(artifact)
    del reach, graph
    gc.collect()

    rng = random.Random(23)
    n = row["n"]
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(queries)]

    cells = []
    for replicas in replica_counts:
        print(
            f"  failover replicas={replicas} ...", file=sys.stderr, flush=True
        )
        doc = measure_failover(
            artifact,
            pairs,
            replicas=replicas,
            connections=CONNECTIONS,
            pipeline=PIPELINE,
        )
        cells.append(
            {
                "replicas": replicas,
                "steady_qps": doc["steady_qps"],
                "steady_latency_ms": doc["steady_latency_ms"],
                "qps_across_failover": doc["qps"],
                "latency_ms_across_failover": doc["latency_ms"],
                "outage_ms": doc["outage_s"] * 1000.0,
                "during_failover_latency_ms": doc["during_failover_ms"],
                "during_failover_samples": doc["during_failover_samples"],
                "retries": doc["retries"],
                "hedges": doc["hedges"],
                "hedge_wins": doc["hedge_wins"],
                "shed": doc["shed"],
                "failed": doc["failed"],
                "errors": doc["errors"],
                "readmitted": doc["readmitted"],
                "verified_pairs": doc["verified_pairs"],
            }
        )
        gc.collect()
    os.unlink(artifact)
    row["failover"] = cells
    row["p99_steady_ms"] = max(
        c["steady_latency_ms"].get("p99", 0.0) for c in cells
    )
    row["p99_during_failover_ms"] = max(
        c["during_failover_latency_ms"].get("p99", 0.0) for c in cells
    )
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args()

    families = SMOKE_FAMILIES if args.smoke else FAMILIES
    queries = args.queries or (4000 if args.smoke else QUERIES)
    replica_counts = (2,) if args.smoke else REPLICA_COUNTS

    doc = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "queries": queries,
        "connections": CONNECTIONS,
        "pipeline": PIPELINE,
        "note": (
            "closed-loop pipelined single-pair requests over TCP against a "
            "ReplicaRouter front end over N replica processes; the failover "
            "pass SIGKILLs one replica mid-load and restarts it blank — "
            "during_failover_latency_ms is the percentiles of requests "
            "whose service interval overlapped the kill->restart window "
            "(steady_latency_ms is the no-chaos baseline through the same "
            "router), retries/hedges/shed are router counter deltas for "
            "the failover pass; zero dropped requests is asserted, answers "
            "are verified bit-identical to the artifact queried directly, "
            "and the restarted blank replica must be shipper-re-filled and "
            "re-admitted before recording"
        ),
        "families": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        for name, make_graph in families.items():
            print(f"[bench_cluster] {name} ...", file=sys.stderr, flush=True)
            row = measure_family(
                name, make_graph, queries, Path(tmp), replica_counts
            )
            doc["families"][name] = row
            best = row["failover"][0]
            print(
                f"  steady p99 {row['p99_steady_ms']:.2f} ms vs "
                f"{row['p99_during_failover_ms']:.2f} ms during failover; "
                f"{best['retries']} retries, {best['hedges']} hedges, "
                f"0 errors, readmitted={best['readmitted']}",
                file=sys.stderr,
            )

    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        args.out.write_text(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)


if __name__ == "__main__":
    main()
