"""Figure 4 — index size (number of stored integers), large graphs.

Paper shape criteria: on the graphs they can index, PWAH-8 and INT stay
smallest; DL's labels are smaller than HL's and close to (or better
than) 2HOP's; everything label-based beats GRAIL's fixed 5-interval
cost and K-Reach where those run.
"""

import pytest

from repro.bench.experiments import PAPER_METHODS
from repro.core.base import get_method

from conftest import build_params, graph_for

DATASETS = ["citeseer", "uniprotenc_22m", "wiki"]


@pytest.mark.parametrize("method", PAPER_METHODS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_index_size_large(benchmark, dataset, method):
    graph = graph_for(dataset)
    params = build_params(method, "figure4")
    factory = get_method(method)

    def build():
        try:
            return factory(graph, **params)
        except MemoryError:
            pytest.skip(f"{method} on {dataset}: DNF (budget)")

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    size = index.index_size_ints()
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.extra_info["index_size_ints"] = size
    assert size >= 0
