"""Construction + batched-query speedup bench for the flat-layout core.

Measures, per graph family, through the public API only (so the same
script runs unchanged against the seed code):

* DL construction time (full ``DistributionLabeling(graph)`` ctor),
* batched query time over 20k random and 20k equal (positive) pairs.

Workflow for the committed before/after artifacts::

    # in a worktree of the seed commit
    PYTHONPATH=<seed>/src python benchmarks/bench_csr_speedup.py \
        --out benchmarks/BENCH_csr_speedup_before.json
    # on the optimised tree
    PYTHONPATH=src python benchmarks/bench_csr_speedup.py \
        --out benchmarks/BENCH_csr_speedup_after.json \
        --baseline benchmarks/BENCH_csr_speedup_before.json

With ``--baseline`` the artifact embeds per-family speedup ratios.
``--smoke`` shrinks everything for CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro.core.base import get_method
from repro.graph.closure import sample_reachable_pair, transitive_closure_bits
from repro.graph.generators import citation_dag, layered_dag, random_dag, sparse_dag

QUERY_BATCH = 20000

FAMILIES = {
    "citation-4000": lambda: citation_dag(4000, out_per_vertex=3, seed=17),
    "citation-8000": lambda: citation_dag(8000, out_per_vertex=3, seed=17),
    "citation-dense-2000": lambda: citation_dag(2000, out_per_vertex=16, seed=17),
    "citation-dense-3000": lambda: citation_dag(3000, out_per_vertex=12, seed=17),
    "random-3000": lambda: random_dag(3000, 9000, seed=11),
    "random-dense-1500": lambda: random_dag(1500, 30000, seed=3),
    "random-dense-2000": lambda: random_dag(2000, 60000, seed=3),
    "sparse-2500": lambda: sparse_dag(2500, 0.004, seed=5),
    "layered-deep-2000": lambda: layered_dag(40, 50, 4, seed=7),
}

SMOKE_FAMILIES = {
    "citation-600": lambda: citation_dag(600, out_per_vertex=3, seed=17),
    "random-dense-400": lambda: random_dag(400, 3000, seed=3),
}


def best_of(fn, repeats: int):
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def measure_family(name, make_graph, batch: int, repeats: int):
    graph = make_graph()
    factory = get_method("DL")

    build_s, index = best_of(lambda: factory(graph), repeats)

    rng = random.Random(7)
    n = graph.n
    random_pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(batch)]
    tc = transitive_closure_bits(graph)
    equal_pairs = []
    while len(equal_pairs) < batch:
        pair = sample_reachable_pair(tc, rng, n)
        if pair is None:
            break
        equal_pairs.append(pair)

    row = {
        "n": n,
        "m": graph.m,
        "dl_build_s": build_s,
        "dl_index_ints": index.index_size_ints(),
    }
    for kind, pairs in (("random", random_pairs), ("equal", equal_pairs)):
        if not pairs:
            continue
        batch_s, answers = best_of(lambda: index.query_batch(pairs), max(repeats, 3))
        row[f"query_{kind}_ms"] = batch_s * 1e3
        row[f"query_{kind}_positive"] = sum(answers)
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="before-JSON to embed speedup ratios against",
    )
    args = parser.parse_args()
    families = SMOKE_FAMILIES if args.smoke else FAMILIES
    batch = 1000 if args.smoke else QUERY_BATCH
    repeats = 1 if args.smoke else 3

    doc = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": args.smoke,
        "query_batch": batch,
        "families": {},
    }
    for name, make_graph in families.items():
        t0 = time.perf_counter()
        doc["families"][name] = measure_family(name, make_graph, batch, repeats)
        row = doc["families"][name]
        print(
            f"{name}: build={row['dl_build_s'] * 1e3:.1f}ms "
            f"random={row.get('query_random_ms', 0):.2f}ms "
            f"equal={row.get('query_equal_ms', 0):.2f}ms "
            f"({time.perf_counter() - t0:.1f}s)"
        )

    if args.baseline is not None:
        before = json.loads(args.baseline.read_text())["families"]
        for name, row in doc["families"].items():
            base = before.get(name)
            if not base:
                continue
            speedups = {"build": base["dl_build_s"] / row["dl_build_s"]}
            for kind in ("random", "equal"):
                key = f"query_{kind}_ms"
                if key in base and key in row:
                    speedups[f"query_{kind}"] = base[key] / row[key]
            row["speedup_vs_baseline"] = {k: round(v, 2) for k, v in speedups.items()}
            print(f"{name}: speedups {row['speedup_vs_baseline']}")

    out = args.out or Path(__file__).parent / "BENCH_csr_speedup.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
