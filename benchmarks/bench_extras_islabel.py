"""Ablation E — IS-Label vs the reachability oracles.

§6.1 of the paper: "We also downloaded and tested IS-labeling ...
However, its query performance is at least 2 to 3 orders magnitude
slower than the reachability methods; we omit reporting its results."
This benchmark reports them: DL and ISL on the same workloads.
"""

import pytest

from repro.core.base import get_method

from conftest import graph_for, workload_for

DATASETS = ["kegg", "agrocyc"]

_cache = {}


def _index(dataset, method):
    key = (dataset, method)
    if key not in _cache:
        _cache[key] = get_method(method)(graph_for(dataset))
    return _cache[key]


@pytest.mark.parametrize("method", ["DL", "PL", "ISL"])
@pytest.mark.parametrize("dataset", DATASETS)
def test_islabel_vs_oracles(benchmark, dataset, method):
    index = _index(dataset, method)
    workload = workload_for(dataset, "equal")

    answers = benchmark(index.query_batch, workload.pairs)

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.extra_info["index_size_ints"] = index.index_size_ints()
    assert sum(answers) == workload.positives
