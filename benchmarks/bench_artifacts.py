"""Artifact persistence bench: on-disk size, cold load, first query.

Measures, per graph family, what the build → compile → serve split
actually buys over the v1 JSON label dump:

* **save** — wall time and on-disk bytes for the v1 JSON path
  (``save_labels``) and both v2 binary profiles of the same built DL
  oracle: ``mmap`` (raw sections, zero-copy shared serving, all engine
  certificates) and ``compact`` (deflated sections, interval
  certificates dropped — answers identical, smallest file).
* **cold load** — wall time of the load call in a *fresh Python
  subprocess* (imports excluded: the child times only the call).  The
  JSON path parses and re-seals every label; the binary path parses a
  small header and memory-maps the arrays.
* **first-query latency** — one scalar query immediately after the
  load, in the same child: the artifact's lazily-faulted mmap pages vs
  the JSON path's already-materialised lists.
* **serve batch** — a 20k-pair random workload through the loaded
  oracle (the engine path on the artifact's mmapped arena).
* **pipeline** — the facade's full-pipeline artifact
  (``Reachability.save`` / ``load``), which the JSON path cannot
  express at all (no condensation); absolute numbers only.

The committed ``BENCH_artifacts.json`` at the repo root records the
full-size run; ``--smoke`` shrinks everything for CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.distribution import DistributionLabeling
from repro.facade import Reachability
from repro.graph.generators import citation_dag, random_dag, sparse_dag
from repro.serialization import load_artifact, load_labels, save_artifact, save_labels

QUERY_BATCH = 20_000

FAMILIES = {
    # The acceptance families: 40000-node graphs where labels are big
    # enough that persistence speed and size genuinely matter.
    "citation-40000": lambda: citation_dag(40000, out_per_vertex=3, seed=17),
    "random-40000": lambda: random_dag(40000, 120000, seed=11),
    "sparse-30000": lambda: sparse_dag(30000, 0.00005, seed=5),
}

SMOKE_FAMILIES = {
    "citation-1200": lambda: citation_dag(1200, out_per_vertex=3, seed=17),
    "sparse-1500": lambda: sparse_dag(1500, 0.001, seed=5),
}

_CHILD_CODE = r"""
import json, sys, time
fmt, path, n, batch = sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
import random
from repro.serialization import load_artifact, load_labels
from repro.kernels import numpy_or_none

numpy_or_none()  # interpreter warm-up: both formats serve post-import

t0 = time.perf_counter()
if fmt == "json":
    oracle = load_labels(path)
else:
    oracle = load_artifact(path)
load_s = time.perf_counter() - t0

rng = random.Random(23)
pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(batch)]

t0 = time.perf_counter()
first = oracle.query(*pairs[0])
first_s = time.perf_counter() - t0

t0 = time.perf_counter()
answers = oracle.query_batch(pairs)
batch_s = time.perf_counter() - t0

print(json.dumps({
    "load_s": load_s,
    "first_query_us": first_s * 1e6,
    "batch_ms": batch_s * 1e3,
    "positives": sum(answers),
}))
"""


def cold_serve(fmt: str, path: str, n: int, batch: int) -> dict:
    """Load + first query + batch in a fresh interpreter; parsed JSON."""
    out = subprocess.run(
        [sys.executable, "-c", _CHILD_CODE, fmt, path, str(n), str(batch)],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def measure_family(name, make_graph, batch: int, tmpdir: Path) -> dict:
    graph = make_graph()
    row = {"n": graph.n, "m": graph.m}

    build_s, index = timed(lambda: DistributionLabeling(graph))
    row["dl_build_s"] = build_s
    row["dl_index_ints"] = index.index_size_ints()

    json_path = str(tmpdir / f"{name}.labels.json")
    mmap_path = str(tmpdir / f"{name}.rpro")
    compact_path = str(tmpdir / f"{name}.compact.rpro")

    save_s, _ = timed(lambda: save_labels(index, json_path))
    row["json_save_s"] = save_s
    row["json_bytes"] = Path(json_path).stat().st_size
    save_s, nbytes = timed(lambda: save_artifact(index, mmap_path))
    row["mmap_save_s"] = save_s
    row["mmap_bytes"] = nbytes
    save_s, nbytes = timed(
        lambda: save_artifact(index, compact_path, profile="compact")
    )
    row["compact_save_s"] = save_s
    row["compact_bytes"] = nbytes

    jc = cold_serve("json", json_path, graph.n, batch)
    mc = cold_serve("artifact", mmap_path, graph.n, batch)
    cc = cold_serve("artifact", compact_path, graph.n, batch)
    assert jc["positives"] == mc["positives"] == cc["positives"], (
        "formats disagree on answers"
    )
    for prefix, cold in (("json", jc), ("mmap", mc), ("compact", cc)):
        for key, val in cold.items():
            row[f"{prefix}_{key}"] = val

    for profile in ("mmap", "compact"):
        row[f"size_ratio_json_over_{profile}"] = round(
            row["json_bytes"] / max(1, row[f"{profile}_bytes"]), 2
        )
        row[f"load_ratio_json_over_{profile}"] = round(
            row["json_load_s"] / max(1e-9, row[f"{profile}_load_s"]), 2
        )
        row[f"first_query_ratio_json_over_{profile}"] = round(
            row["json_first_query_us"]
            / max(1e-3, row[f"{profile}_first_query_us"]),
            2,
        )

    # Facade pipeline (condensation + index) — v2-only capability.
    pipe_path = str(tmpdir / f"{name}.pipe.rpro")
    reach = Reachability(graph, "DL")
    save_s, nbytes = timed(lambda: reach.save(pipe_path))
    row["pipeline_save_s"] = save_s
    row["pipeline_bytes"] = nbytes
    load_s, served = timed(lambda: Reachability.load(pipe_path))
    row["pipeline_load_s"] = load_s
    rng = random.Random(29)
    pairs = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(batch)]
    batch_s, answers = timed(lambda: served.query_batch(pairs))
    row["pipeline_batch_ms"] = batch_s * 1e3
    row["pipeline_positives"] = sum(answers)
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args()

    families = SMOKE_FAMILIES if args.smoke else FAMILIES
    batch = 2000 if args.smoke else QUERY_BATCH

    doc = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": args.smoke,
        "query_batch": batch,
        "note": (
            "cold loads run in fresh subprocesses and time only the load "
            "call; size/load/first-query ratios are JSON over the mmap "
            "and compact artifact profiles (higher = artifact wins); "
            "answers are bit-identical across all three formats"
        ),
        "families": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        for name, make_graph in families.items():
            print(f"[bench_artifacts] {name} ...", file=sys.stderr, flush=True)
            row = measure_family(name, make_graph, batch, Path(tmp))
            doc["families"][name] = row
            print(
                f"  json {row['json_bytes']:,} B / load {row['json_load_s']:.3f}s"
                f" | mmap {row['mmap_bytes']:,} B / {row['mmap_load_s']:.4f}s"
                f" (size x{row['size_ratio_json_over_mmap']},"
                f" load x{row['load_ratio_json_over_mmap']})"
                f" | compact {row['compact_bytes']:,} B / "
                f"{row['compact_load_s']:.4f}s"
                f" (size x{row['size_ratio_json_over_compact']},"
                f" load x{row['load_ratio_json_over_compact']})",
                file=sys.stderr,
            )

    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        args.out.write_text(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)


if __name__ == "__main__":
    main()
