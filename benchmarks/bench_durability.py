"""Durability bench: what an fsync policy costs, and what recovery costs.

Three measurements, all on real disk (``tempfile`` on whatever
filesystem the runner has — the absolute numbers are fs-dependent, the
*ratios* are the point):

* **journal append throughput** — raw ``UpdateJournal.append`` rate
  per sync policy, single-threaded and with 4 concurrent appenders.
  ``interval`` is group commit: one fsync covers every append that
  piled in behind it, so its gain over ``always`` only appears under
  concurrency; a single serialized appender pays a full wait per
  record either way.
* **primary update throughput** — end-to-end
  ``JournaledPrimary.apply_update`` rate per sync policy (journal
  append + incremental compile + epoch publish per batch).  The
  primary serializes updates, so this is the single-appender regime:
  expect ``interval`` ≈ ``always``, and both within a small factor of
  ``off`` once compile cost dominates the fsync.
* **recovery wall time vs journal length** — ``checkpoint_every=0``
  primaries killed with N updates in the journal, then timed through
  ``JournaledPrimary(data_dir)`` (manifest load + replay + compile +
  publish).  Linear in N is the contract; the committed numbers
  quantify the slope, i.e. what a checkpoint interval buys.

The committed ``BENCH_durability.json`` at the repo root records the
full-size run; ``--smoke`` shrinks everything for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.durability import JournaledPrimary, UpdateJournal
from repro.graph.generators import novel_acyclic_edges, sparse_dag

SYNCS = ("always", "interval", "off")


def bench_journal(tmp: Path, appends: int, threads: int) -> dict:
    """Raw append rate per policy, 1 and `threads` concurrent writers."""
    out = {}
    for sync in SYNCS:
        row = {}
        for nthreads in (1, threads):
            d = tmp / f"wal-{sync}-{nthreads}"
            per_thread = appends // nthreads
            with UpdateJournal(
                str(d), sync=sync, sync_interval_s=0.002
            ) as j:
                barrier = threading.Barrier(nthreads + 1)

                def worker(k):
                    barrier.wait()
                    for i in range(per_thread):
                        j.append([(k, i + 1)], client=f"w{k}", seq=i + 1)

                workers = [
                    threading.Thread(target=worker, args=(k,))
                    for k in range(nthreads)
                ]
                for t in workers:
                    t.start()
                barrier.wait()
                t0 = time.perf_counter()
                for t in workers:
                    t.join()
                wall = time.perf_counter() - t0
                fsyncs = j.stats()["fsyncs"]
            shutil.rmtree(d)
            row[f"threads_{nthreads}"] = {
                "appends": per_thread * nthreads,
                "appends_per_s": per_thread * nthreads / wall,
                "fsyncs": fsyncs,
            }
        out[sync] = row
    return out


def bench_primary(tmp: Path, graph, batches, pairs_per_batch) -> dict:
    """End-to-end apply_update rate per policy."""
    edges, _ = novel_acyclic_edges(graph, batches * pairs_per_batch, seed=3)
    out = {}
    for sync in SYNCS:
        d = str(tmp / f"primary-{sync}")
        p = JournaledPrimary(d, graph, sync=sync, sync_interval_s=0.002)
        try:
            t0 = time.perf_counter()
            for b in range(batches):
                batch = edges[b * pairs_per_batch:(b + 1) * pairs_per_batch]
                p.apply_update(batch, client="bench", seq=b + 1)
            wall = time.perf_counter() - t0
        finally:
            p.close()
        shutil.rmtree(d)
        out[sync] = {
            "batches": batches,
            "edges_per_batch": pairs_per_batch,
            "updates_per_s": batches / wall,
            "mean_ack_ms": wall / batches * 1000.0,
        }
    return out


def bench_recovery(tmp: Path, graph, journal_lengths) -> list:
    """Restart wall time as a function of un-checkpointed records."""
    rows = []
    biggest = max(journal_lengths)
    edges, _ = novel_acyclic_edges(graph, biggest, seed=5)
    for length in journal_lengths:
        d = str(tmp / f"recover-{length}")
        p = JournaledPrimary(d, graph, sync="off", checkpoint_every=0)
        for i in range(length):
            p.apply_update([edges[i]], client="bench", seq=i + 1)
        # kill -9 equivalent: drop handles, no checkpoint
        p.live.store.close()
        p._journal.close()
        p._closed = True
        t0 = time.perf_counter()
        p2 = JournaledPrimary(d)
        recover_s = time.perf_counter() - t0
        info = dict(p2.recovery_info)
        p2.close()
        shutil.rmtree(d)
        assert info["records_replayed"] == length, info
        rows.append(
            {
                "journal_records": length,
                "recover_ms": recover_s * 1000.0,
                "replayed": info["records_replayed"],
            }
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args()

    if args.smoke:
        appends, threads = 200, 4
        n, batches, per_batch = 400, 30, 2
        lengths = (10, 40)
    else:
        appends, threads = 2000, 4
        n, batches, per_batch = 5000, 200, 3
        lengths = (50, 200, 800)

    graph = sparse_dag(n, seed=19)
    doc = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "graph": {"n": graph.n, "m": graph.m},
        "note": (
            "journal_append is raw UpdateJournal.append on real disk "
            "(tempfile fs): interval is group commit, so it only beats "
            "always under concurrent appenders — watch the fsync counts, "
            "not just the rates; primary_updates is end-to-end "
            "apply_update (journal + incremental compile + publish), "
            "serialized, so interval ≈ always there by design and the "
            "compile typically dominates the fsync; recovery is the "
            "restart wall time with N un-checkpointed journal records "
            "(checkpoint_every=0), linear in N — the slope is what a "
            "checkpoint interval buys; 'off' survives kill -9 but NOT "
            "power loss (see README Durability)"
        ),
        "journal_append": {},
        "primary_updates": {},
        "recovery": [],
    }
    with tempfile.TemporaryDirectory(prefix="repro-benchdur-") as tmpdir:
        tmp = Path(tmpdir)
        print("[bench_durability] journal append ...", file=sys.stderr, flush=True)
        doc["journal_append"] = bench_journal(tmp, appends, threads)
        print("[bench_durability] primary updates ...", file=sys.stderr, flush=True)
        doc["primary_updates"] = bench_primary(tmp, graph, batches, per_batch)
        print("[bench_durability] recovery ...", file=sys.stderr, flush=True)
        doc["recovery"] = bench_recovery(tmp, graph, lengths)

    for sync in SYNCS:
        j1 = doc["journal_append"][sync][f"threads_1"]
        jn = doc["journal_append"][sync][f"threads_{threads}"]
        p = doc["primary_updates"][sync]
        print(
            f"  {sync:8s} journal {j1['appends_per_s']:9.0f}/s (1 thr, "
            f"{j1['fsyncs']} fsyncs) {jn['appends_per_s']:9.0f}/s "
            f"({threads} thr, {jn['fsyncs']} fsyncs); primary "
            f"{p['updates_per_s']:7.1f} upd/s ack {p['mean_ack_ms']:.2f} ms",
            file=sys.stderr,
        )
    for row in doc["recovery"]:
        print(
            f"  recovery {row['journal_records']:5d} records -> "
            f"{row['recover_ms']:8.1f} ms",
            file=sys.stderr,
        )

    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        args.out.write_text(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)


if __name__ == "__main__":
    main()
