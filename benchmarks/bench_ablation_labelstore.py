"""Ablation C — label storage (sorted vector / hybrid / masks / sets).

§1 of the paper: earlier hop-labeling implementations looked slow at
query time because labels were hash sets; "employing a sorted
vector/array instead of a set can significantly eliminate the query
performance gap".  That advice is about C++ cache behaviour — in
CPython, C-implemented ``frozenset.isdisjoint`` and bigint ``&`` beat
an interpreted merge loop, so the library seals labels behind bigint
masks where the hop space allows, with a hybrid (sorted lists probed
against frozenset mirrors) as the fallback.  This ablation times all
four strategies on identical DL labels and the same workload.
"""

import pytest

from repro.core.distribution import DistributionLabeling

from conftest import graph_for, workload_for

DATASETS = ["agrocyc", "arxiv"]

_cache = {}


def _dl(dataset):
    if dataset not in _cache:
        _cache[dataset] = DistributionLabeling(graph_for(dataset))
    return _cache[dataset]


@pytest.mark.parametrize("dataset", DATASETS)
def test_sorted_vector_queries(benchmark, dataset):
    from repro.core.labels import intersects

    index = _dl(dataset)
    pairs = workload_for(dataset, "equal").pairs
    lout, lin = index.labels.lout, index.labels.lin

    def run():
        return [intersects(lout[u], lin[v]) for u, v in pairs]

    answers = benchmark(run)
    benchmark.extra_info["representation"] = "sorted-vector"
    benchmark.extra_info["dataset"] = dataset
    assert answers == index.query_batch(pairs)


@pytest.mark.parametrize("dataset", DATASETS)
def test_default_sealed_queries(benchmark, dataset):
    """Whatever layout the library sealed by default (masks on small
    hop spaces, hybrid mirrors otherwise)."""
    index = _dl(dataset)
    pairs = workload_for(dataset, "equal").pairs
    benchmark(index.query_batch, pairs)
    benchmark.extra_info["representation"] = (
        "mask-sealed" if index.labels._out_masks is not None else "hybrid-sealed"
    )
    benchmark.extra_info["dataset"] = dataset


@pytest.mark.parametrize("dataset", DATASETS)
def test_hybrid_sealed_queries(benchmark, dataset):
    """The fallback layout: sealed frozenset Lout probed by the Lin list.

    Built on a fresh copy of the labels so the cached (possibly
    mask-sealed) index is left untouched for the other tests.
    """
    from repro.core.labels import LabelSet

    index = _dl(dataset)
    labels = LabelSet.from_dict(index.labels.to_dict())
    labels.seal()
    assert labels._out_masks is None
    pairs = workload_for(dataset, "equal").pairs
    answers = benchmark(labels.query_batch, pairs)
    benchmark.extra_info["representation"] = "hybrid-sealed"
    benchmark.extra_info["dataset"] = dataset
    assert answers == index.query_batch(pairs)


@pytest.mark.parametrize("dataset", DATASETS)
def test_hash_set_queries(benchmark, dataset):
    index = _dl(dataset)
    pairs = workload_for(dataset, "equal").pairs
    lout = [frozenset(x) for x in index.labels.lout]
    lin = [frozenset(x) for x in index.labels.lin]

    def run():
        return [not lout[u].isdisjoint(lin[v]) for u, v in pairs]

    answers = benchmark(run)
    benchmark.extra_info["representation"] = "hash-set"
    benchmark.extra_info["dataset"] = dataset
    assert answers == index.query_batch(pairs)
