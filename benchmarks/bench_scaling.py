"""Scaling sweep — the "scalable" in the paper's title.

Construction time and index size for DL, HL, INT and GRAIL across a
4× range of citation-DAG sizes (the family whose closures explode).
The paper's claim to verify: the oracle construction grows near-
linearly while closure-based methods inherit closure growth.  Each
cell's size is attached as extra info so one benchmark JSON captures
both curves.

A second sweep runs DL alone across the dense families from
``bench_csr_speedup.py`` (random-dense / citation-dense), where the
flat-layout core's reduction-traversal and bigint pruning matter most —
this is the construction trajectory the BENCH_csr_speedup artifacts
track release over release.
"""

import pytest

from repro.core.base import get_method
from repro.graph.generators import citation_dag, random_dag

SIZES = [1000, 2000, 4000, 8000]
METHODS = ["DL", "HL", "INT", "GL"]

#: (family, n) -> graph factory for the DL-focused dense sweep.
DENSE_FAMILIES = {
    ("random-dense", 1000): lambda: random_dag(1000, 20000, seed=3),
    ("random-dense", 1500): lambda: random_dag(1500, 30000, seed=3),
    ("random-dense", 2000): lambda: random_dag(2000, 60000, seed=3),
    ("citation-dense", 1000): lambda: citation_dag(1000, out_per_vertex=16, seed=17),
    ("citation-dense", 2000): lambda: citation_dag(2000, out_per_vertex=16, seed=17),
    ("citation-dense", 3000): lambda: citation_dag(3000, out_per_vertex=12, seed=17),
}

_graphs = {}


def _graph(n):
    if n not in _graphs:
        _graphs[n] = citation_dag(n, out_per_vertex=3, seed=17)
    return _graphs[n]


def _dense_graph(key):
    if key not in _graphs:
        _graphs[key] = DENSE_FAMILIES[key]()
    return _graphs[key]


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("n", SIZES)
def test_scaling_construction(benchmark, n, method):
    graph = _graph(n)
    factory = get_method(method)

    index = benchmark.pedantic(lambda: factory(graph), rounds=2, iterations=1)

    benchmark.extra_info["n"] = n
    benchmark.extra_info["m"] = graph.m
    benchmark.extra_info["method"] = method
    benchmark.extra_info["index_size_ints"] = index.index_size_ints()


@pytest.mark.parametrize("family,n", sorted(DENSE_FAMILIES))
def test_scaling_construction_dense(benchmark, family, n):
    graph = _dense_graph((family, n))
    factory = get_method("DL")

    index = benchmark.pedantic(lambda: factory(graph), rounds=2, iterations=1)

    benchmark.extra_info["family"] = family
    benchmark.extra_info["n"] = n
    benchmark.extra_info["m"] = graph.m
    benchmark.extra_info["method"] = "DL"
    benchmark.extra_info["index_size_ints"] = index.index_size_ints()


def test_dl_scales_subquadratically():
    """Quadrupling n must not square DL's label size (near-linear growth)."""
    small = get_method("DL")(_graph(2000)).index_size_ints()
    large = get_method("DL")(_graph(8000)).index_size_ints()
    assert large < 16 * small  # 4x n -> well below 16x (quadratic) growth
