"""Observability bench: what the telemetry layer costs on the hot path.

The same closed-loop pipelined workload is driven against two servers
over the same artifact — one with telemetry disabled
(``serve_artifact(..., telemetry=False)``), one with the default
telemetry on (request/cache/batch-wait histograms bound, 1-in-64
request auto-sampling into the trace ring) — and the throughput and
latency deltas are the instrumentation's price.  Modes run in paired
back-to-back rounds (off, on, off, on, ...) so slow host drift hits
both sides of each pair equally.

Two rows per family:

* ``raw`` — cache disabled, single-pair pipelined requests: every
  request crosses the micro-batcher, so the histogram observes + span
  stamps sit on the densest path the server has.
* ``cached`` — a 90%-hot repeating workload against the sharded LRU:
  adds the cache-lookup histogram to the measured path.

``overhead_pct`` is signed ((off - on) / off × 100 for qps; (on - off)
/ off × 100 for p50 latency), so a negative value means telemetry-on
measured *faster* — both directions are real on a noisy host, and the
acceptance bar is |overhead| < 2%.  Unlike the throughput benches this
reports the *median of paired rounds*, not best-of-N: an A/B
difference wants an outlier-robust estimator, and best-of-N turns one
lucky baseline run into fake overhead.

The committed ``BENCH_obs.json`` at the repo root records the full
run; ``--smoke`` shrinks everything for CI.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import random
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.facade import Reachability
from repro.graph.generators import citation_dag, random_dag
from repro.serialization import load_artifact
from repro.server import run_load
from repro.server.service import serve_artifact

FAMILIES = {
    "citation-8000": lambda: citation_dag(8000, out_per_vertex=3, seed=17),
    "random-8000": lambda: random_dag(8000, 24000, seed=11),
}

SMOKE_FAMILIES = {
    "citation-1200": lambda: citation_dag(1200, out_per_vertex=3, seed=17),
}

CONNECTIONS = 8
PIPELINE = 128


def _measure(path, pairs, expected, *, telemetry, cache_size):
    """One load run against a fresh server; answers verified.

    An untimed warmup pass spins up worker threads, the batcher, and
    (when enabled) the cache before the clock starts, and the cyclic
    GC is paused during the timed region — both knobs shrink run-to-
    run variance, which on a small host would otherwise dwarf a
    single-digit overhead signal.
    """
    server = serve_artifact(
        path, telemetry=telemetry, cache_size=cache_size
    )
    try:
        warmup = pairs[: min(2000, len(pairs))]
        run_load(
            *server.address, warmup,
            connections=CONNECTIONS, pipeline=PIPELINE,
        )
        gc.collect()
        gc.disable()
        try:
            report = run_load(
                *server.address, pairs,
                connections=CONNECTIONS, pipeline=PIPELINE,
            )
        finally:
            gc.enable()
        if report.errors:
            raise RuntimeError(f"load run failed: {report.first_error}")
        if report.answers != expected:
            raise AssertionError(
                f"served answers diverge from direct oracle "
                f"(telemetry={telemetry})"
            )
        return {"qps": report.qps, "latency_ms": report.latency_ms}
    finally:
        server.close()


def _ab_row(path, pairs, expected, *, cache_size, repeats):
    """Paired off/on rounds; medians + median per-round overhead.

    Overhead is an A/B *difference*, so unlike the throughput
    benchmarks this does not keep the best repeat: best-of-N amplifies
    one-sided outliers (one lucky "off" run reads as fake overhead).
    Each round runs both modes back-to-back — host drift hits the pair
    equally — and the headline is the median of the per-round signed
    overheads.
    """
    rounds = []
    for _ in range(max(1, repeats)):
        off = _measure(
            path, pairs, expected, telemetry=False, cache_size=cache_size
        )
        on = _measure(
            path, pairs, expected, telemetry=True, cache_size=cache_size
        )
        rounds.append((off, on))
    qps_off = statistics.median(r[0]["qps"] for r in rounds)
    qps_on = statistics.median(r[1]["qps"] for r in rounds)
    per_round = [
        (off["qps"] - on["qps"]) / off["qps"] * 100.0 for off, on in rounds
    ]
    p50_off = statistics.median(r[0]["latency_ms"].get("p50", 0.0) for r in rounds)
    p50_on = statistics.median(r[1]["latency_ms"].get("p50", 0.0) for r in rounds)
    mid = len(rounds) // 2
    return {
        "qps_off": qps_off,
        "qps_on": qps_on,
        "latency_ms_off": rounds[mid][0]["latency_ms"],
        "latency_ms_on": rounds[mid][1]["latency_ms"],
        "p50_ms_off": p50_off,
        "p50_ms_on": p50_on,
        "qps_overhead_pct": round(statistics.median(per_round), 3),
        "qps_overhead_pct_rounds": [round(x, 3) for x in per_round],
        "p50_overhead_pct": round(
            (p50_on - p50_off) / p50_off * 100.0 if p50_off > 0 else 0.0, 3
        ),
        "repeats": repeats,
    }


def measure_family(name, make_graph, queries, tmpdir: Path, repeats) -> dict:
    graph = make_graph()
    n = graph.n
    row = {"n": graph.n, "m": graph.m}

    t0 = time.perf_counter()
    reach = Reachability(graph, "DL")
    row["build_s"] = time.perf_counter() - t0
    path = str(tmpdir / f"{name}.rpro")
    reach.save(path)
    del reach, graph
    gc.collect()

    rng = random.Random(23)
    raw_pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(queries)]
    hot = [
        (rng.randrange(n), rng.randrange(n))
        for _ in range(max(64, queries // 50))
    ]
    cached_pairs = [
        hot[rng.randrange(len(hot))] if rng.random() < 0.9
        else (rng.randrange(n), rng.randrange(n))
        for _ in range(queries)
    ]
    direct = load_artifact(path)
    raw_expected = [bool(a) for a in direct.query_batch(raw_pairs)]
    cached_expected = [bool(a) for a in direct.query_batch(cached_pairs)]
    del direct
    gc.collect()

    print(f"  raw (cache off) ...", file=sys.stderr, flush=True)
    row["raw"] = _ab_row(
        path, raw_pairs, raw_expected, cache_size=0, repeats=repeats
    )
    print(f"  cached (90% hot) ...", file=sys.stderr, flush=True)
    row["cached"] = _ab_row(
        path, cached_pairs, cached_expected,
        cache_size=1 << 16, repeats=repeats,
    )
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None,
                        help="off/on pairs per row, best per mode recorded")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args()

    families = SMOKE_FAMILIES if args.smoke else FAMILIES
    queries = args.queries or (3000 if args.smoke else 20_000)
    repeats = args.repeats or (1 if args.smoke else 11)

    doc = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "queries": queries,
        "repeats": repeats,
        "connections": CONNECTIONS,
        "pipeline": PIPELINE,
        "note": (
            "telemetry on vs off over the same artifact and workload; "
            "paired back-to-back rounds, headline = median per-round "
            "qps_overhead_pct = (off - on) / off * 100 (negative = on "
            "measured faster); answers asserted bit-identical to a "
            "direct oracle before any number is recorded"
        ),
        "families": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        for name, make_graph in families.items():
            print(f"[bench_obs] {name} ...", file=sys.stderr, flush=True)
            row = measure_family(name, make_graph, queries, Path(tmp), repeats)
            doc["families"][name] = row
            print(
                f"  raw overhead {row['raw']['qps_overhead_pct']:+.2f}% qps, "
                f"cached {row['cached']['qps_overhead_pct']:+.2f}% qps",
                file=sys.stderr,
            )

    worst = max(
        abs(row[kind]["qps_overhead_pct"])
        for row in doc["families"].values()
        for kind in ("raw", "cached")
    )
    doc["worst_abs_overhead_pct"] = worst
    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        args.out.write_text(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)


if __name__ == "__main__":
    main()
