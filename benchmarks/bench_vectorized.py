"""Vectorized-backend speedup bench: construction + batched-query throughput.

Measures, per graph family, through the public API only (so the same
script runs unchanged against the PR 1 tree):

* **construction** — full ctor wall time for DL, HL and GRAIL (best of
  ``--build-repeats``).  On trees with kernel backends the builds run
  with ``backend="auto"`` semantics (whatever the ctor picks by default),
  which is exactly what a user gets.
* **batched queries** — wall time to answer 20k random and 20k
  reachable ("equal") pairs through ``query_batch`` on the DL oracle.
  Two timings are recorded where available:

  - ``query_*_ms`` — the workload handed over as a list of tuples (the
    only representation PR 1 accepts, timed identically on both trees);
  - ``query_*_native_ms`` — the workload handed over as a NumPy
    ``(P, 2)`` array, the vectorized engine's native batch
    representation (only present on trees whose ``query_batch`` accepts
    arrays).  Speedup ratios embedded by ``--baseline`` use the native
    figure when present — the engine's throughput claim is about
    serving batches kept in array form end to end — and the list-input
    figure is always recorded alongside for transparency.

Workflow for the committed before/after artifacts::

    # at the PR 1 baseline commit
    PYTHONPATH=src python benchmarks/bench_vectorized.py \
        --out BENCH_vectorized_before.json
    # on the vectorized tree
    PYTHONPATH=src python benchmarks/bench_vectorized.py \
        --out BENCH_vectorized_after.json \
        --baseline BENCH_vectorized_before.json

``--smoke`` shrinks everything for CI.

The equal workload is sampled by random forward walks (the large
families make the bigint transitive closure too expensive), so it is
deterministic given the seed and identical across trees.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro.core.base import get_method
from repro.graph.generators import citation_dag, random_dag, sparse_dag

QUERY_BATCH = 20000

FAMILIES = {
    # The three headline families sit above the bigint-mask limit (or
    # below the mask density floor), where PR 1's scalar hybrid path is
    # weakest and the vectorized engine applies.
    "citation-40000": lambda: citation_dag(40000, out_per_vertex=3, seed=17),
    "random-40000": lambda: random_dag(40000, 120000, seed=11),
    "sparse-30000": lambda: sparse_dag(30000, 0.00005, seed=5),
    "random-dense-34000": lambda: random_dag(34000, 200000, seed=3),
    # Small mask-path family for context: the scalar bigint path is
    # already near-optimal here and the engine deliberately stands down.
    "citation-8000": lambda: citation_dag(8000, out_per_vertex=3, seed=17),
}

SMOKE_FAMILIES = {
    "citation-1200": lambda: citation_dag(1200, out_per_vertex=3, seed=17),
    "sparse-1500": lambda: sparse_dag(1500, 0.001, seed=5),
}


def best_of(fn, repeats: int):
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def walk_equal_pairs(graph, count: int, rng: random.Random):
    """Reachable pairs via random forward walks (closure-free)."""
    out_adj = graph.out_adj
    n = graph.n
    pairs = []
    attempts = 0
    limit = count * 50
    while len(pairs) < count and attempts < limit:
        attempts += 1
        u = rng.randrange(n)
        w = u
        for _ in range(rng.randrange(1, 12)):
            nbrs = out_adj[w]
            if not nbrs:
                break
            w = nbrs[rng.randrange(len(nbrs))]
        if w != u:
            pairs.append((u, w))
    return pairs


def measure_family(name, make_graph, batch: int, repeats: int):
    graph = make_graph()
    row = {"n": graph.n, "m": graph.m}

    build_s, index = best_of(lambda: get_method("DL")(graph), repeats)
    row["dl_build_s"] = build_s
    row["dl_index_ints"] = index.index_size_ints()
    hl_s, _ = best_of(lambda: get_method("HL")(graph), repeats)
    row["hl_build_s"] = hl_s
    gl_s, _ = best_of(lambda: get_method("GL")(graph), repeats)
    row["gl_build_s"] = gl_s

    rng = random.Random(7)
    n = graph.n
    workloads = {
        "random": [(rng.randrange(n), rng.randrange(n)) for _ in range(batch)],
        "equal": walk_equal_pairs(graph, batch, rng),
    }
    for kind, pairs in workloads.items():
        if not pairs:
            continue
        batch_s, answers = best_of(
            lambda: index.query_batch(pairs), max(repeats, 3)
        )
        row[f"query_{kind}_ms"] = batch_s * 1e3
        row[f"query_{kind}_positive"] = sum(answers)
        # Native array input: only trees whose query_batch accepts a
        # NumPy (P, 2) array (the vectorized engine) record this.
        try:
            import numpy as np

            arr = np.array(pairs, dtype=np.int64)
            native = index.query_batch(arr)
            if list(native) != list(answers):
                raise AssertionError("native batch disagrees with list batch")
            native_s, _ = best_of(
                lambda: index.query_batch(arr), max(repeats, 3)
            )
            row[f"query_{kind}_native_ms"] = native_s * 1e3
        except Exception:
            pass
    return row


RATIO_KEYS = [
    ("build_dl", "dl_build_s", None),
    ("build_hl", "hl_build_s", None),
    ("build_gl", "gl_build_s", None),
    ("query_random", "query_random_ms", "query_random_native_ms"),
    ("query_equal", "query_equal_ms", "query_equal_native_ms"),
]


def embed_speedups(doc, baseline_path: Path) -> None:
    before = json.loads(baseline_path.read_text())["families"]
    for name, row in doc["families"].items():
        base = before.get(name)
        if not base:
            continue
        speedups = {}
        for label, key, native_key in RATIO_KEYS:
            base_val = base.get(key)
            after_val = row.get(native_key) if native_key else None
            if after_val is None:
                after_val = row.get(key)
            if base_val and after_val:
                speedups[label] = round(base_val / after_val, 2)
        row["speedup_vs_baseline"] = speedups
        print(f"{name}: speedups {speedups}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument("--build-repeats", type=int, default=2)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="before-JSON to embed speedup ratios against",
    )
    args = parser.parse_args()
    families = SMOKE_FAMILIES if args.smoke else FAMILIES
    batch = 1000 if args.smoke else QUERY_BATCH
    repeats = 1 if args.smoke else args.build_repeats

    doc = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": args.smoke,
        "query_batch": batch,
        "note": (
            "query_*_ms times list-of-tuples input (the PR 1 representation); "
            "query_*_native_ms times the engine's native (P, 2) array input. "
            "Speedup ratios use the native figure when present."
        ),
        "families": {},
    }
    for name, make_graph in families.items():
        t0 = time.perf_counter()
        doc["families"][name] = row = measure_family(name, make_graph, batch, repeats)
        print(
            f"{name}: DL={row['dl_build_s']:.2f}s HL={row['hl_build_s']:.2f}s "
            f"GL={row['gl_build_s']:.2f}s "
            f"qrand={row.get('query_random_ms', 0):.2f}ms "
            f"qeq={row.get('query_equal_ms', 0):.2f}ms "
            f"({time.perf_counter() - t0:.1f}s)"
        )

    if args.baseline is not None:
        embed_speedups(doc, args.baseline)

    out = args.out or Path(__file__).resolve().parent.parent / "BENCH_vectorized.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
