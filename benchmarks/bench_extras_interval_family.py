"""Ablation D — the interval-compression family tree.

The paper's §2.1 sketches a lineage: chain compression (1990) → tree
cover (1989 intervals) → dual labeling (2006) → PathTree (2008) → the
3-hop contour view (2009).  All six are implemented here on one engine
each; this benchmark lines them up against INT on two structurally
opposite datasets, quantifying what each structural refinement buys in
index size and query time.
"""

import pytest

from repro.core.base import get_method

from conftest import graph_for, workload_for

FAMILY = ["CH", "TREE", "INT", "PT", "3HOP", "DUAL"]
DATASETS = ["agrocyc", "arxiv"]

_cache = {}


def _index(dataset, method):
    key = (dataset, method)
    if key not in _cache:
        try:
            _cache[key] = get_method(method)(graph_for(dataset))
        except MemoryError as err:
            _cache[key] = err
    result = _cache[key]
    if isinstance(result, MemoryError):
        pytest.skip(f"{method} on {dataset}: budget")
    return result


@pytest.mark.parametrize("method", FAMILY)
@pytest.mark.parametrize("dataset", DATASETS)
def test_interval_family_queries(benchmark, dataset, method):
    index = _index(dataset, method)
    workload = workload_for(dataset, "equal")

    answers = benchmark(index.query_batch, workload.pairs)

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.extra_info["index_size_ints"] = index.index_size_ints()
    assert sum(answers) == workload.positives


@pytest.mark.parametrize("dataset", DATASETS)
def test_interval_family_all_agree(dataset):
    """The whole family answers one workload identically."""
    workload = workload_for(dataset, "equal")
    counts = {m: _index(dataset, m).count_reachable(workload.pairs) for m in FAMILY}
    assert len(set(counts.values())) == 1, counts
