"""Server bench: throughput scaling across workers and batching on/off.

What a served deployment of the oracle actually delivers, measured
from the client side of a real TCP connection:

* **batching axis** — the same pipelined single-pair workload against
  a micro-batching window of 1 ms vs a window of 0 (every request
  dispatched individually).  Coalescing amortizes per-request dispatch
  — and, with worker processes, the per-task IPC round trip — across
  whole batches; the ``batching_speedup`` ratio per family is the
  headline number (>2× on the 40000-node families is the acceptance
  bar).
* **worker axis** — 0 (in-process answers), 1 and 2 worker processes,
  each mmap-loading the same artifact (one physical copy).  On a
  multicore host this is the CPU-scaling axis; the committed JSON
  records ``cpu_count`` so single-core results read as what they are
  (worker processes there only buy mmap isolation, not parallelism —
  and the unbatched × workers cell shows the full per-query IPC cost
  that micro-batching exists to amortize).
* **cache row** — a skewed (repeating) workload against the sharded
  LRU, reporting hit rate and the resulting q/s.

Every run asserts the served answers are bit-identical to a direct
``CompiledOracle`` on the same artifact before any number is recorded.

The committed ``BENCH_server.json`` at the repo root records the
full-size run on the 40000-node acceptance families; ``--smoke``
shrinks everything for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.facade import Reachability
from repro.graph.generators import citation_dag, random_dag, sparse_dag
from repro.serialization import load_artifact
from repro.server import ReachClient, run_load
from repro.server.service import serve_artifact

FAMILIES = {
    # The acceptance families: the same 40000-node graphs the artifact
    # bench uses, where label sizes make serving genuinely non-trivial.
    "citation-40000": lambda: citation_dag(40000, out_per_vertex=3, seed=17),
    "random-40000": lambda: random_dag(40000, 120000, seed=11),
    "sparse-30000": lambda: sparse_dag(30000, 0.00005, seed=5),
}

SMOKE_FAMILIES = {
    "citation-1200": lambda: citation_dag(1200, out_per_vertex=3, seed=17),
    "sparse-1500": lambda: sparse_dag(1500, 0.001, seed=5),
}

QUERIES = 30_000
# 8 connections × 128 in-flight keeps the batcher fed: at 4 connections
# (or shallow pipelines) the coalescing windows run half-empty and the
# amortization washes out (measured while tuning this bench on the
# 1-core container).
CONNECTIONS = 8
PIPELINE = 128
WORKER_COUNTS = (0, 1, 2)
WINDOWS_MS = (0.0, 1.0, 2.0)  # batching off / default window / wide


def _grid_cell(path, pairs, expected, *, workers, window_ms, queries_label,
               repeats):
    """One (workers, window) server config measured under load.

    The workload runs ``repeats`` times against one server and the
    best run is recorded (same best-of-N discipline as the harness's
    batch timings — a single pass on a contended host is ±30% noise).
    Every repeat's answers are verified.
    """
    server = serve_artifact(
        path,
        workers=workers,
        window_s=window_ms / 1000.0,
        cache_size=0,  # raw query path; the cache gets its own row
    )
    try:
        best = None
        for _ in range(max(1, repeats)):
            report = run_load(
                *server.address,
                pairs,
                connections=CONNECTIONS,
                pipeline=PIPELINE,
            )
            if report.errors:
                raise RuntimeError(f"load run failed: {report.first_error}")
            if report.answers != expected:
                raise AssertionError(
                    f"served answers diverge from direct oracle "
                    f"(workers={workers}, window={window_ms})"
                )
            if best is None or report.qps > best.qps:
                best = report
        with ReachClient(*server.address) as client:
            stats = client.stats()
        return {
            "workers": workers,
            "window_ms": window_ms,
            "qps": best.qps,
            "wall_s": best.wall_s,
            "latency_ms": best.latency_ms,
            "mean_batch_pairs": stats["batcher"]["mean_batch_pairs"],
            "coalesced_batches": stats["batcher"]["coalesced_batches"],
            "queries": queries_label,
            "repeats": repeats,
        }
    finally:
        server.close()


def _cache_row(path, n, queries):
    """A zipf-ish repeating workload against the result cache."""
    rng = random.Random(41)
    hot = [(rng.randrange(n), rng.randrange(n)) for _ in range(max(64, queries // 50))]
    pairs = [
        hot[rng.randrange(len(hot))] if rng.random() < 0.9
        else (rng.randrange(n), rng.randrange(n))
        for _ in range(queries)
    ]
    import gc

    direct = load_artifact(path)
    expected = [bool(a) for a in direct.query_batch(pairs)]
    del direct
    gc.collect()
    server = serve_artifact(path, cache_size=1 << 16)
    try:
        report = run_load(
            *server.address, pairs, connections=CONNECTIONS, pipeline=PIPELINE
        )
        if report.errors:
            raise RuntimeError(f"cache load run failed: {report.first_error}")
        assert report.answers == expected, "cache changed an answer bit"
        with ReachClient(*server.address) as client:
            cache = client.stats()["cache"]
        return {
            "qps": report.qps,
            "hit_rate": cache["hit_rate"],
            "negative_hits": cache["negative_hits"],
            "positive_hits": cache["positive_hits"],
            "latency_ms": report.latency_ms,
        }
    finally:
        server.close()


def measure_family(name, make_graph, queries, tmpdir: Path, repeats: int) -> dict:
    import gc

    graph = make_graph()
    n = graph.n
    row = {"n": graph.n, "m": graph.m}

    t0 = time.perf_counter()
    reach = Reachability(graph, "DL")
    row["build_s"] = time.perf_counter() - t0
    path = str(tmpdir / f"{name}.rpro")
    row["artifact_bytes"] = reach.save(path)
    # Drop the build side before measuring: a serving host holds the
    # artifact, not the construction object graph — and a live
    # 40000-node index inflates GC scan time enough to depress every
    # measured cell by ~30-40% on this container.
    del reach, graph
    gc.collect()

    rng = random.Random(23)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(queries)]
    direct = load_artifact(path)
    expected = [bool(a) for a in direct.query_batch(pairs)]
    row["positives"] = sum(expected)
    del direct
    gc.collect()

    cells = []
    for workers in WORKER_COUNTS:
        for window_ms in WINDOWS_MS:
            print(
                f"  workers={workers} window={window_ms:g}ms ...",
                file=sys.stderr,
                flush=True,
            )
            cells.append(
                _grid_cell(
                    path,
                    pairs,
                    expected,
                    workers=workers,
                    window_ms=window_ms,
                    queries_label=queries,
                    repeats=repeats,
                )
            )
    row["grid"] = cells

    # Headline ratios per worker count: the default 1 ms window vs
    # batching off, plus the best across the on-windows (both recorded
    # so the headline is never quietly the 2 ms cell).
    by_key = {(c["workers"], c["window_ms"]): c["qps"] for c in cells}
    on_windows = [w for w in WINDOWS_MS if w > 0]
    row["batching_speedup_1ms"] = {
        str(w): round(by_key[(w, 1.0)] / max(1e-9, by_key[(w, 0.0)]), 2)
        for w in WORKER_COUNTS
    }
    row["batching_speedup"] = {
        str(w): round(
            max(by_key[(w, win)] for win in on_windows)
            / max(1e-9, by_key[(w, 0.0)]),
            2,
        )
        for w in WORKER_COUNTS
    }
    row["best_batching_speedup"] = max(row["batching_speedup"].values())
    row["best_qps"] = max(c["qps"] for c in cells)
    row["cache"] = _cache_row(path, n, queries)
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None,
                        help="load runs per grid cell, best recorded")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args()

    families = SMOKE_FAMILIES if args.smoke else FAMILIES
    queries = args.queries or (3000 if args.smoke else QUERIES)
    repeats = args.repeats or (1 if args.smoke else 3)

    doc = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "queries": queries,
        "repeats": repeats,
        "connections": CONNECTIONS,
        "pipeline": PIPELINE,
        "note": (
            "closed-loop pipelined single-pair requests over TCP; "
            "batching_speedup_1ms = qps(window=1ms) / qps(window=0) per "
            "worker count, batching_speedup = best on-window "
            "(1ms or 2ms) / qps(window=0); answers asserted "
            "bit-identical to a direct CompiledOracle before any number "
            "is recorded; on a single-core host the worker axis "
            "measures IPC cost, not CPU scaling (see cpu_count)"
        ),
        "families": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        for name, make_graph in families.items():
            print(f"[bench_server] {name} ...", file=sys.stderr, flush=True)
            row = measure_family(name, make_graph, queries, Path(tmp), repeats)
            doc["families"][name] = row
            print(
                f"  best {row['best_qps']:,.0f} q/s; batching speedup "
                f"{row['batching_speedup']} (workers: off->on); cache "
                f"{row['cache']['qps']:,.0f} q/s at "
                f"{row['cache']['hit_rate']:.0%} hits",
                file=sys.stderr,
            )

    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        args.out.write_text(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)


if __name__ == "__main__":
    main()
