"""Table 5 — query time, equal workload, large graphs.

This is where the reachability oracle wins in the paper: TC compression
gets slower (bigger closures to scan) or fails outright, online search
crawls, while HL/DL answer from short labels.  Methods whose scaled
budget trips are skipped — the paper reports "—" on those cells
(K-Reach on all of them, PT/2HOP on most).
"""

import pytest

from repro.bench.experiments import PAPER_METHODS

from conftest import QUERY_BATCH, index_for, workload_for

DATASETS = ["citeseer", "uniprotenc_22m", "wiki"]


@pytest.mark.parametrize("method", PAPER_METHODS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_query_equal_large(benchmark, dataset, method):
    index = index_for(dataset, method, "table5")
    workload = workload_for(dataset, "equal")

    answers = benchmark(index.query_batch, workload.pairs)

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.extra_info["batch"] = QUERY_BATCH
    assert sum(answers) == workload.positives
