"""Table 1 — dataset statistics and stand-in instantiation cost.

The paper's Table 1 lists |V| and |E| of the coalesced DAGs.  This
benchmark times stand-in generation (including condensation for cyclic
families) and attaches both the paper's sizes and the stand-in's sizes
as extra info, so a benchmark report doubles as the Table-1 artifact.
"""

import pytest

from repro.datasets.catalog import DATASETS

SAMPLED = ["kegg", "arxiv", "human", "citeseer", "uniprotenc_22m", "wiki"]


@pytest.mark.parametrize("name", SAMPLED)
def test_dataset_standin_generation(benchmark, name):
    spec = DATASETS[name]
    graph = benchmark(spec.build)
    benchmark.extra_info["paper_n"] = spec.paper_n
    benchmark.extra_info["paper_m"] = spec.paper_m
    benchmark.extra_info["standin_n"] = graph.n
    benchmark.extra_info["standin_m"] = graph.m
    assert graph.n > 0
