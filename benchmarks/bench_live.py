"""Live-serving bench: swap latency and query latency during the swap.

What the ``repro.live`` subsystem costs and guarantees, measured from
the client side of a real TCP connection on the 40000-node acceptance
families:

* **update swap** — a mixed read/update run: the steady workload is
  measured first, then re-run while an edge-insertion stream is applied
  mid-load through the :class:`~repro.live.IncrementalCompiler` and
  published as a new epoch.  Recorded per (family × workers): the
  insert→compile→publish wall time (``swap_ms`` with its compile /
  publish split and whether the compile was incremental), steady
  p50/p95/p99 vs the p50/p95/p99 of requests whose service interval
  overlapped the swap window, and the error count — **zero dropped
  requests is asserted, and post-swap answers are verified
  bit-identical to a fresh direct build of the post-update graph**
  before any number is recorded.
* **update batch sweep** — the direct (no TCP) ``apply_ops`` wall time
  per update batch size (5/50/500 full-size), insert-only and mixed
  half-removal batches, charting how the batched kernels amortize.
* **artifact swap** — hot-swapping a prebuilt v2 artifact file through
  a :class:`~repro.live.VersionedArtifactStore` (load side-by-side +
  epoch flip): the publish wall time is the whole service interruption
  budget, and it is paid off the query path.

The committed ``BENCH_live.json`` at the repo root records the
full-size run; ``--smoke`` shrinks everything for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.harness import measure_live_swap
from repro.facade import Reachability
from repro.graph.generators import (
    citation_dag,
    novel_acyclic_edges,
    random_dag,
    sparse_dag,
)
from repro.live import VersionedArtifactStore

FAMILIES = {
    # The acceptance families (same graphs as BENCH_server.json).
    "citation-40000": lambda: citation_dag(40000, out_per_vertex=3, seed=17),
    "random-40000": lambda: random_dag(40000, 120000, seed=11),
    "sparse-30000": lambda: sparse_dag(30000, 0.00005, seed=5),
}

SMOKE_FAMILIES = {
    "citation-1200": lambda: citation_dag(1200, out_per_vertex=3, seed=17),
    "sparse-1500": lambda: sparse_dag(1500, 0.001, seed=5),
}

QUERIES = 30_000
CONNECTIONS = 8
PIPELINE = 128
WORKER_COUNTS = (0, 2)
UPDATE_EDGES = 50
BATCH_SIZES = (5, 50, 500)
SMOKE_BATCH_SIZES = (5, 20)


def artifact_swap_cell(graph, g2, tmpdir: Path) -> dict:
    """Hot-swap cost of a prebuilt artifact: load-side-by-side + flip."""
    v1 = str(tmpdir / "swap-v1.rpro")
    v2 = str(tmpdir / "swap-v2.rpro")
    t0 = time.perf_counter()
    reach = Reachability(graph.copy(), "DL")
    build_s = time.perf_counter() - t0
    nbytes = reach.save(v1)
    Reachability(g2.copy(), "DL").save(v2)
    del reach
    store = VersionedArtifactStore()
    try:
        store.publish(v1)
        t0 = time.perf_counter()
        store.publish(v2)
        publish_s = time.perf_counter() - t0
    finally:
        store.close()
    for path in (v1, v2):
        os.unlink(path)
    return {
        "build_s": build_s,
        "artifact_bytes": nbytes,
        "publish_ms": publish_s * 1000.0,
    }


def _sample_live_edges(graph, count, rng):
    """``count`` distinct existing edges, degree-biased but good enough."""
    picked = set()
    while len(picked) < count:
        u = rng.randrange(graph.n)
        row = graph.out_adj[u]
        if row:
            picked.add((u, rng.choice(row)))
    return sorted(picked)


def update_batch_sweep(graph, sizes) -> list:
    """Direct ``apply_ops`` wall time by batch size, insert-only and mixed.

    One compiler per family; cells apply cumulatively, so each carries
    the previous cells' churn — a few hundred edges on a 100k+-edge
    graph, noise for latency purposes.  ``mixed`` batches are half
    removals of existing edges, half novel inserts, which exercises the
    tombstone/structural-resolution ladder alongside the insert kernel.
    """
    from repro.live import IncrementalCompiler

    comp = IncrementalCompiler(graph.copy())
    live = comp.original
    rng = random.Random(41)
    cells = []
    for size in sizes:
        for mode in ("insert", "mixed"):
            if mode == "insert":
                stream, _ = novel_acyclic_edges(
                    live, size, seed=rng.randrange(1 << 30)
                )
                ops = [("+", u, v) for u, v in stream]
            else:
                n_rm = size // 2
                stream, _ = novel_acyclic_edges(
                    live, size - n_rm, seed=rng.randrange(1 << 30)
                )
                ops = [("-", u, v) for u, v in _sample_live_edges(live, n_rm, rng)]
                ops += [("+", u, v) for u, v in stream]
            t0 = time.perf_counter()
            summary = comp.apply_ops(ops)
            dt = (time.perf_counter() - t0) * 1000.0
            cells.append(
                {
                    "batch": size,
                    "mode": mode,
                    "ops": len(ops),
                    "apply_ms": dt,
                    "changed": summary["changed"],
                    "tombstoned": summary["tombstoned"],
                    "dirt_ratio": summary["dirt_ratio"],
                }
            )
    return cells


def measure_family(name, make_graph, queries, tmpdir: Path, edges_n: int,
                   batch_sizes=BATCH_SIZES) -> dict:
    import gc

    graph = make_graph()
    row = {"n": graph.n, "m": graph.m}
    updates, g2 = novel_acyclic_edges(graph, edges_n, seed=29)
    rng = random.Random(23)
    pairs = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(queries)]

    row["artifact_swap"] = artifact_swap_cell(graph, g2, tmpdir)
    gc.collect()

    print("  update-batch sweep ...", file=sys.stderr, flush=True)
    row["update_batch_sweep"] = update_batch_sweep(graph, batch_sizes)
    gc.collect()

    cells = []
    for workers in WORKER_COUNTS:
        print(f"  update-swap workers={workers} ...", file=sys.stderr, flush=True)
        # The 1-core bench host occasionally stalls a worker-pool
        # connection outright (a pre-existing serving flake unrelated
        # to the swap path); retry the whole cell rather than commit a
        # poisoned measurement, and record how many tries it took.
        retries = 0
        while True:
            try:
                doc = measure_live_swap(
                    graph,
                    pairs,
                    updates,
                    workers=workers,
                    connections=CONNECTIONS,
                    pipeline=PIPELINE,
                )
                break
            except RuntimeError as exc:
                retries += 1
                if retries > 3:
                    raise
                print(
                    f"  retry {retries}/3 (workers={workers}): {exc}",
                    file=sys.stderr,
                    flush=True,
                )
                gc.collect()
        cells.append(
            {
                "workers": workers,
                "retries": retries,
                "updates": len(updates),
                "steady_qps": doc["steady_qps"],
                "steady_latency_ms": doc["steady_latency_ms"],
                "qps_across_swap": doc["qps"],
                "latency_ms_across_swap": doc["latency_ms"],
                "swap_ms": doc["swap_s"] * 1000.0,
                "compile_ms": (doc["compile_s"] or 0.0) * 1000.0,
                "publish_ms": (doc["publish_s"] or 0.0) * 1000.0,
                "incremental_compile": not doc["full"],
                "during_swap_latency_ms": doc["during_swap_ms"],
                "during_swap_samples": doc["during_swap_samples"],
                "errors": doc["errors"],
                "verified_pairs": doc["verified_pairs"],
                "epoch": doc["epoch"],
            }
        )
        gc.collect()
    row["update_swap"] = cells
    row["swap_ms_best"] = min(c["swap_ms"] for c in cells)
    row["p95_during_swap_ms"] = max(
        c["during_swap_latency_ms"].get("p95", 0.0) for c in cells
    )
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args()

    families = SMOKE_FAMILIES if args.smoke else FAMILIES
    queries = args.queries or (3000 if args.smoke else QUERIES)
    edges_n = 10 if args.smoke else UPDATE_EDGES
    batch_sizes = SMOKE_BATCH_SIZES if args.smoke else BATCH_SIZES

    doc = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "queries": queries,
        "connections": CONNECTIONS,
        "pipeline": PIPELINE,
        "update_edges": edges_n,
        "note": (
            "closed-loop pipelined single-pair requests over TCP against a "
            "live (epoch-versioned) server, cache off; update_swap applies "
            "the edge stream mid-load and publishes the next epoch — "
            "swap_ms is insert+compile+publish wall time, "
            "during_swap_latency_ms the percentiles of requests whose "
            "service interval overlapped the swap window (steady_latency_ms "
            "is the no-swap baseline); zero dropped requests is asserted "
            "and post-swap answers are verified bit-identical to a fresh "
            "direct build before recording; artifact_swap.publish_ms is "
            "the load+flip cost of hot-swapping a prebuilt artifact file; "
            "update_batch_sweep is the direct (no TCP) apply_ops wall "
            "time per batch size, insert-only and half-removal mixed"
        ),
        "batch_sizes": list(batch_sizes),
        "families": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        for name, make_graph in families.items():
            print(f"[bench_live] {name} ...", file=sys.stderr, flush=True)
            row = measure_family(
                name, make_graph, queries, Path(tmp), edges_n, batch_sizes
            )
            doc["families"][name] = row
            best = min(row["update_swap"], key=lambda c: c["swap_ms"])
            print(
                f"  swap {row['swap_ms_best']:.1f} ms "
                f"({'incremental' if best['incremental_compile'] else 'full'}); "
                f"steady p95 "
                f"{best['steady_latency_ms'].get('p95', 0):.2f} ms vs "
                f"{row['p95_during_swap_ms']:.2f} ms during swap; "
                f"artifact publish "
                f"{row['artifact_swap']['publish_ms']:.1f} ms; 0 errors",
                file=sys.stderr,
            )

    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        args.out.write_text(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)


if __name__ == "__main__":
    main()
