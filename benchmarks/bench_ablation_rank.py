"""Ablation A — DL rank functions.

The paper chooses the degree product ``(|Nout|+1)(|Nin|+1)`` as the
total order (§5.2) because it counts the ≤2-distance pairs a hop can
cover.  This ablation builds DL under four orders and records the label
size each produces; the degree product should dominate random and
middle-out orders on every family and match-or-beat the degree sum.
"""

import pytest

from repro.core.distribution import DistributionLabeling

from conftest import graph_for

DATASETS = ["agrocyc", "arxiv", "citeseer"]
ORDERS = ["degree_product", "degree_sum", "random", "topo_center"]


@pytest.mark.parametrize("order", ORDERS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_dl_rank_ablation(benchmark, dataset, order):
    graph = graph_for(dataset)

    index = benchmark.pedantic(
        lambda: DistributionLabeling(graph, order=order), rounds=2, iterations=1
    )
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["order"] = order
    benchmark.extra_info["label_size_ints"] = index.index_size_ints()


@pytest.mark.parametrize("dataset", DATASETS + ["web"])
def test_degree_product_is_robust(dataset):
    """Sanity assertion behind the ablation.

    The degree product is not the global optimum on every family (a
    random order can edge it out on dense citation DAGs, where any
    vertex is a decent landmark), but it is the *robust* choice: never
    far behind random, and orders of magnitude ahead of it on hub-less
    web graphs (on our `web` stand-in a random order is ~100x larger).
    """
    graph = graph_for(dataset)
    chosen = DistributionLabeling(graph, order="degree_product").index_size_ints()
    rand = DistributionLabeling(graph, order="random").index_size_ints()
    middle = DistributionLabeling(graph, order="topo_center").index_size_ints()
    assert chosen <= 1.6 * rand
    assert chosen <= middle
