"""Table 3 — query time, *random* workload, small graphs.

Random pairs are mostly negative on sparse DAGs, so oracle queries must
scan whole labels before answering "no" — the paper observes slightly
slower oracle times here than on the equal load (Table 2 vs 3).
"""

import pytest

from repro.bench.experiments import PAPER_METHODS

from conftest import QUERY_BATCH, index_for, workload_for

DATASETS = ["kegg", "agrocyc", "arxiv"]


@pytest.mark.parametrize("method", PAPER_METHODS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_query_random_small(benchmark, dataset, method):
    index = index_for(dataset, method, "table3")
    pairs = workload_for(dataset, "random").pairs

    answers = benchmark(index.query_batch, pairs)

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.extra_info["batch"] = QUERY_BATCH
    benchmark.extra_info["positive_answers"] = sum(answers)
    assert len(answers) == len(pairs)
