"""Table 2 — query time, *equal* workload (≈50% positive), small graphs.

Paper shape criteria: PT fastest; DL within ~2× of PT and faster than
INT/PWAH-8; HL comparable to 2HOP; GRAIL and PL an order of magnitude
slower.  Each benchmark times one (dataset, method) cell over a shared
1000-query batch.
"""

import pytest

from repro.bench.experiments import PAPER_METHODS

from conftest import QUERY_BATCH, index_for, workload_for

DATASETS = ["kegg", "agrocyc", "xmark", "arxiv"]


@pytest.mark.parametrize("method", PAPER_METHODS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_query_equal_small(benchmark, dataset, method):
    index = index_for(dataset, method, "table2")
    workload = workload_for(dataset, "equal")
    pairs = workload.pairs

    answers = benchmark(index.query_batch, pairs)

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.extra_info["batch"] = QUERY_BATCH
    benchmark.extra_info["positive_answers"] = sum(answers)
    # Cross-method validation: every method answers the same workload
    # with the same positive count.
    assert sum(answers) == workload.positives
