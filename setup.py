"""Legacy shim so `pip install -e .` works without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables the
setuptools develop-mode code path on minimal offline environments.
"""

from setuptools import setup

setup()
